package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subspace"
)

// factKey is a canonical representation for set comparison.
type factKey struct {
	c lattice.Key
	m subspace.Mask
}

func factSet(fs []Fact) map[factKey]bool {
	out := make(map[factKey]bool, len(fs))
	for _, f := range fs {
		out[factKey{f.Constraint.Key(), f.Subspace}] = true
	}
	return out
}

func sameFacts(a, b []Fact) (bool, string) {
	sa, sb := factSet(a), factSet(b)
	if len(sa) != len(a) || len(sb) != len(b) {
		return false, "duplicate facts emitted"
	}
	for k := range sa {
		if !sb[k] {
			return false, fmt.Sprintf("fact %x/%b missing from second set", string(k.c), k.m)
		}
	}
	for k := range sb {
		if !sa[k] {
			return false, fmt.Sprintf("fact %x/%b missing from first set", string(k.c), k.m)
		}
	}
	return true, ""
}

// table1 builds the paper's Table I mini-world of basketball gamelogs.
func table1(t *testing.T) *relation.Table {
	t.Helper()
	s, err := relation.NewSchema("gamelog",
		[]relation.DimAttr{{Name: "player"}, {Name: "month"}, {Name: "season"}, {Name: "team"}, {Name: "opp_team"}},
		[]relation.MeasureAttr{
			{Name: "points", Direction: relation.LargerBetter},
			{Name: "assists", Direction: relation.LargerBetter},
			{Name: "rebounds", Direction: relation.LargerBetter},
		})
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(s)
	rows := []struct {
		d []string
		m []float64
	}{
		{[]string{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, []float64{4, 12, 5}},        // t1
		{[]string{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, []float64{24, 5, 15}},         // t2
		{[]string{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, []float64{13, 13, 5}},       // t3
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, []float64{2, 5, 2}},          // t4
		{[]string{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, []float64{3, 5, 3}},  // t5
		{[]string{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"}, []float64{27, 18, 8}}, // t6
		{[]string{"Wesley", "Feb", "1995-96", "Celtics", "Nets"}, []float64{12, 13, 5}},        // t7
	}
	for _, r := range rows {
		if _, err := tb.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// table4 builds the paper's running example (Table IV).
func table4(t *testing.T) *relation.Table {
	t.Helper()
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d1"}, {Name: "d2"}, {Name: "d3"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(s)
	rows := []struct {
		d []string
		m []float64
	}{
		{[]string{"a1", "b2", "c2"}, []float64{10, 15}},
		{[]string{"a1", "b1", "c1"}, []float64{15, 10}},
		{[]string{"a2", "b1", "c2"}, []float64{17, 17}},
		{[]string{"a2", "b1", "c1"}, []float64{20, 20}},
		{[]string{"a1", "b1", "c1"}, []float64{11, 15}},
	}
	for _, r := range rows {
		if _, err := tb.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// allAlgorithms builds one instance of every discoverer over the config.
func allAlgorithms(t *testing.T, cfg Config) []Discoverer {
	t.Helper()
	type ctor struct {
		name string
		mk   func(Config) (Discoverer, error)
	}
	ctors := []ctor{
		{"Oracle", func(c Config) (Discoverer, error) { return NewOracle(c) }},
		{"BruteForce", func(c Config) (Discoverer, error) { return NewBruteForce(c) }},
		{"BaselineSeq", func(c Config) (Discoverer, error) { return NewBaselineSeq(c) }},
		{"BaselineIdx", func(c Config) (Discoverer, error) { return NewBaselineIdx(c) }},
		{"C-CSC", func(c Config) (Discoverer, error) { return NewCCSC(c) }},
		{"BottomUp", func(c Config) (Discoverer, error) { return NewBottomUp(c) }},
		{"TopDown", func(c Config) (Discoverer, error) { return NewTopDown(c) }},
		{"SBottomUp", func(c Config) (Discoverer, error) { return NewSBottomUp(c) }},
		{"STopDown", func(c Config) (Discoverer, error) { return NewSTopDown(c) }},
	}
	var out []Discoverer
	for _, c := range ctors {
		cfg := cfg
		cfg.Store = nil // fresh store per algorithm
		d, err := c.mk(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out = append(out, d)
	}
	return out
}

// checkInvariant1 verifies BottomUp's Invariant 1 against the oracle: for
// every tuple of the history, every constraint mask, every subspace, the
// tuple is stored in µ(C,M) iff it is in λ_M(σ_C(R)).
func checkInvariant1(t *testing.T, mem *store.Memory, history []*relation.Tuple, d, dhat, m, mhat int, includeFull bool) {
	t.Helper()
	subs := subspace.Enumerate(m, mhat)
	if includeFull && mhat < m {
		subs = append(subs, subspace.Full(m))
	}
	for _, tu := range history {
		for _, c := range lattice.CtMasks(d, dhat) {
			cons := lattice.FromTuple(tu, c)
			key := cons.Key()
			for _, sub := range subs {
				cell := mem.LoadKey(store.CellKey{C: key, M: sub})
				stored := cell.ContainsID(tu.ID)
				want := inContextualSkyline(tu, history, cons, sub)
				if stored != want {
					t.Fatalf("Invariant 1 violated: tuple %d at (%v, %b): stored=%v skyline=%v",
						tu.ID, cons.Vals, sub, stored, want)
				}
			}
		}
	}
}

// checkInvariant2 verifies TopDown's Invariant 2: stored iff maximal
// skyline constraint.
func checkInvariant2(t *testing.T, mem *store.Memory, history []*relation.Tuple, d, dhat, m, mhat int, includeFull bool) {
	t.Helper()
	subs := subspace.Enumerate(m, mhat)
	if includeFull && mhat < m {
		subs = append(subs, subspace.Full(m))
	}
	for _, tu := range history {
		for _, sub := range subs {
			// Compute the skyline-constraint mask set of tu.
			masks := lattice.CtMasks(d, dhat)
			sky := make(map[lattice.Mask]bool, len(masks))
			for _, c := range masks {
				cons := lattice.FromTuple(tu, c)
				sky[c] = inContextualSkyline(tu, history, cons, sub)
			}
			for _, c := range masks {
				cons := lattice.FromTuple(tu, c)
				cell := mem.LoadKey(store.CellKey{C: cons.Key(), M: sub})
				stored := cell.ContainsID(tu.ID)
				// Maximal: skyline here and no strict submask (ancestor)
				// is a skyline constraint.
				maximal := sky[c]
				if maximal {
					for s := (c - 1) & c; ; s = (s - 1) & c {
						if s != c && sky[s] {
							maximal = false
							break
						}
						if s == 0 {
							break
						}
					}
					if c == 0 {
						maximal = sky[0]
					}
				}
				if stored != maximal {
					t.Fatalf("Invariant 2 violated: tuple %d at (%v, %b): stored=%v maximal=%v (skyline=%v)",
						tu.ID, cons.Vals, sub, stored, maximal, sky[c])
				}
			}
		}
	}
}

func inContextualSkyline(tu *relation.Tuple, history []*relation.Tuple, c lattice.Constraint, sub subspace.Mask) bool {
	if !c.Satisfies(tu) {
		return false
	}
	for _, u := range history {
		if u.ID != tu.ID && c.Satisfies(u) && subspace.Dominates(u, tu, sub) {
			return false
		}
	}
	return true
}

// randomTable generates a stream with heavy dimension-value collisions and
// measure ties (the hard cases for lattice pruning and dominance).
func randomTable(t *testing.T, rng *rand.Rand, n, d, m, dimCard, measCard int) *relation.Table {
	t.Helper()
	dims := make([]relation.DimAttr, d)
	for i := range dims {
		dims[i] = relation.DimAttr{Name: fmt.Sprintf("d%d", i+1)}
	}
	measures := make([]relation.MeasureAttr, m)
	for i := range measures {
		dir := relation.LargerBetter
		if i%3 == 2 {
			dir = relation.SmallerBetter // exercise orientation
		}
		measures[i] = relation.MeasureAttr{Name: fmt.Sprintf("m%d", i+1), Direction: dir}
	}
	s, err := relation.NewSchema("rand", dims, measures)
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(s)
	for i := 0; i < n; i++ {
		dv := make([]int32, d)
		for j := range dv {
			dv[j] = int32(rng.Intn(dimCard))
		}
		mv := make([]float64, m)
		for j := range mv {
			mv[j] = float64(rng.Intn(measCard))
		}
		if _, err := tb.AppendEncoded(dv, mv); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// removeTuple drops u (by identity) from a tuple slice, order-preserving.
func removeTuple(ts []*relation.Tuple, u *relation.Tuple) []*relation.Tuple {
	for i, w := range ts {
		if w == u {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

func sortedFactStrings(fs []Fact, s *relation.Schema, dict *relation.Dict) []string {
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%s | {%v}", f.Constraint.Format(s, dict), subspace.Names(f.Subspace, s)))
	}
	sort.Strings(out)
	return out
}
