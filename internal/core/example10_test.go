package core

import (
	"testing"
)

// TestExample10ComparisonCounts pins the exact comparison counts for t5's
// arrival on Table IV. The paper's Example 10 claims 7 (TopDown) vs 4
// (STopDown), based on Fig 6a showing µ(〈a1,b1,*〉,{m2}) and
// µ(〈a1,*,c1〉,{m2}) as empty — but that state contradicts the paper's own
// Invariant 2: before t5, t2 IS in the {m2}-skyline of both contexts
// (σ〈a1,b1,*〉 = σ〈a1,*,c1〉 = {t2}) while their parents 〈a1,*,*〉 (t1's 15
// beats t2's 10 on m2) and 〈*,b1,*〉/〈*,*,c1〉 (t4 dominates) are not
// skyline constraints of t2, so both are MAXIMAL skyline constraints and
// must store t2 (our invariant checker verifies this from first
// principles — see TestInvariants). With those two cells populated, both
// algorithms make exactly 2 more comparisons than the example states:
// TopDown 9, STopDown 6. The paper's headline — sharing saves exactly 3
// comparisons (7−4 = 9−6) and skips the fully-pruned {m1} pass — is
// preserved verbatim. Recorded as erratum #3 in EXPERIMENTS.md.
func TestExample10ComparisonCounts(t *testing.T) {
	tb := table4(t)
	cases := []struct {
		mk   func(Config) (*TopDown, error)
		want int64
	}{
		{NewTopDown, 9},
		{NewSTopDown, 6},
	}
	for _, tc := range cases {
		alg, err := tc.mk(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := tb.Tuples()
		for _, tu := range ts[:4] {
			alg.Process(tu)
		}
		before := alg.Metrics().Comparisons
		alg.Process(ts[4])
		got := alg.Metrics().Comparisons - before
		if got != tc.want {
			t.Errorf("%s: t5 needed %d comparisons, want %d (paper says %d; see erratum note)",
				alg.Name(), got, tc.want, tc.want-2)
		}
	}
}

// TestExample7BottomUpComparisonFlow pins BottomUp's Example 7 behaviour
// on the same arrival: the traversal starting from ⊥(C^t5) compares t5
// with t2 (stored at the bottom and the two surviving parents), is
// dominated by t4 at 〈*,b1,c1〉, and deletes t1 at 〈a1,*,*〉.
func TestExample7BottomUpFlow(t *testing.T) {
	tb := table4(t)
	alg, err := NewBottomUp(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := tb.Tuples()
	for _, tu := range ts[:4] {
		alg.Process(tu)
	}
	beforeStored := alg.StoreStats().StoredTuples
	facts := alg.Process(ts[4])
	// Net stored-entry delta across the three subspaces: full space: t5
	// enters 4 cells and evicts t1 from 〈a1,*,*〉 (Fig 3b) → +3; {m1}: t5
	// is dominated by t2 at ⊥(C^t5) and everything is pruned (Fig 5) → 0;
	// {m2}: t5 replaces t2 at the three 〈a1..〉 combinations (±0) and
	// joins t1's skyline at 〈a1,*,*〉 (Fig 6b) → +1. Total +4.
	delta := alg.StoreStats().StoredTuples - beforeStored
	if delta != 4 {
		t.Errorf("stored-entry delta for t5 = %d, want 4 (+3 full, +0 {m1}, +1 {m2})", delta)
	}
	// Facts: 4 in full space (Fig 3b), 0 in {m1} (Fig 5), 4 in {m2} (Fig 6).
	bySub := map[uint32]int{}
	for _, f := range facts {
		bySub[f.Subspace]++
	}
	if bySub[0b11] != 4 || bySub[0b01] != 0 || bySub[0b10] != 4 {
		t.Errorf("t5 facts per subspace = %v, want full:4 {m1}:0 {m2}:4", bySub)
	}
}
