package core

import (
	"repro/internal/csc"
	"repro/internal/relation"
	"repro/internal/store"
)

// CCSC is the paper's adaptation of the compressed skycube (Xia & Zhang,
// SIGMOD'06) to situational-fact discovery, described in §II and compared
// against in §VI: one CSC is maintained PER CONTEXT (constraint). Upon
// arrival of t, for every constraint C ∈ C^t the corresponding CSC is
// updated, which entails per-subspace skyline queries to decide whether t
// enters each subspace skyline — the "overkill" the paper attributes to
// this adaptation, and the reason it trails BottomUp/TopDown by an order
// of magnitude while storing an intermediate number of tuples.
type CCSC struct {
	*base
	// cubes is keyed by interned constraint id — one map hash over eight
	// bytes instead of a key string per visited constraint.
	cubes map[store.ConstraintID]*csc.CSC
	// cachedStats tracks aggregate stored tuples/comparisons across cubes
	// without re-walking the map.
	stored int64
	comps  int64
}

// NewCCSC creates the algorithm.
func NewCCSC(cfg Config) (*CCSC, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &CCSC{base: b, cubes: make(map[store.ConstraintID]*csc.CSC)}, nil
}

// Name implements Discoverer.
func (a *CCSC) Name() string { return "C-CSC" }

// Process implements Discoverer.
func (a *CCSC) Process(t *relation.Tuple) []Fact {
	a.met.Tuples++
	a.newTupleScratch(t)
	var facts []Fact
	for _, c := range a.ctMasks {
		a.met.Traversed++
		k := a.cid(t, c)
		cube, ok := a.cubes[k]
		if !ok {
			cube = csc.New(a.m, a.mhat)
			a.cubes[k] = cube
		}
		beforeStored, beforeComps := cube.StoredTuples(), cube.Comparisons()
		skySubs := cube.Insert(t)
		a.stored += cube.StoredTuples() - beforeStored
		a.comps += cube.Comparisons() - beforeComps
		for _, m := range skySubs {
			facts = a.emit(t, c, m, facts)
		}
	}
	a.met.Comparisons = a.comps
	return facts
}

// StoreStats implements Discoverer: C-CSC has no µ store; its storage
// footprint is the per-cube minimum-subspace entries, reported here so
// Figure 10b can chart all algorithms uniformly.
func (a *CCSC) StoreStats() store.Stats {
	return store.Stats{StoredTuples: a.stored, Cells: int64(len(a.cubes))}
}

var _ Discoverer = (*CCSC)(nil)
