package core

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

// BottomUp is Algorithm 4 of the paper. It maintains Invariant 1 — µ(C,M)
// stores ALL skyline tuples λ_M(σ_C(R)) — and traverses each arriving
// tuple's constraint lattice bottom-up (from the most specific constraint
// towards ⊤), pruning all ancestors of a constraint as soon as a stored
// skyline tuple dominates t there.
//
// With Shared=true it becomes SBottomUp (§V-C): a first pass over the full
// measure space records one Proposition-4 relation per compared tuple, and
// each subspace pass pre-prunes the submask closure of every recorded
// dominator's shared mask, letting the bottom-up traversal stop earlier.
// Subspace passes keep their own dominance checks (the pre-pruning is
// sound but not complete for BottomUp's traversal order), which is why the
// paper observes only marginal comparison savings for SBottomUp (Fig 11).
type BottomUp struct {
	*base
	shared bool

	recs    []pairRec
	recSeen map[int64]bool
}

// pairRec is one root-phase comparison record used by the sharing passes.
type pairRec struct {
	shared lattice.Mask
	rel    subspace.Relation
}

// NewBottomUp creates plain BottomUp.
func NewBottomUp(cfg Config) (*BottomUp, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &BottomUp{base: b}, nil
}

// NewSBottomUp creates SBottomUp (sharing across measure subspaces).
func NewSBottomUp(cfg Config) (*BottomUp, error) {
	if cfg.Subspaces != nil {
		return nil, fmt.Errorf("core: SBottomUp shares work across ALL subspaces; explicit subspace subsets require the non-shared algorithms")
	}
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &BottomUp{base: b, shared: true}, nil
}

// Name implements Discoverer.
func (a *BottomUp) Name() string {
	if a.shared {
		return "SBottomUp"
	}
	return "BottomUp"
}

// Process implements Discoverer.
func (a *BottomUp) Process(t *relation.Tuple) []Fact {
	a.met.Tuples++
	a.newTupleScratch(t)
	facts := a.newFacts()
	if !a.shared {
		for _, m := range a.subs {
			facts = a.traverse(t, m, false, facts)
		}
		return a.doneFacts(facts)
	}
	// SBottomUp: root pass over the full space 𝕄, recording relations.
	a.recs = a.recs[:0]
	if a.recSeen == nil {
		a.recSeen = make(map[int64]bool, 64)
	} else {
		clear(a.recSeen)
	}
	facts = a.traverse(t, a.fullM, true, facts)
	for _, m := range a.subs {
		if m == a.fullM {
			continue
		}
		facts = a.traverse(t, m, false, facts)
	}
	return a.doneFacts(facts)
}

// traverse runs one bottom-up pass in measure subspace m. When root is
// true this is SBottomUp's full-space pass (it records pair relations and
// only emits facts if the full space is itself a reported subspace); when
// a.shared and !root, recorded relations pre-prune the lattice.
func (a *BottomUp) traverse(t *relation.Tuple, m subspace.Mask, root bool, facts []Fact) []Fact {
	a.nextEpoch()
	emitting := !root || a.mhat == a.m
	if a.shared && !root {
		for _, r := range a.recs {
			if r.rel.DominatedIn(m) {
				a.markSubmasksPruned(r.shared)
			}
		}
		if a.allBottomsPruned() {
			// t is dominated in every context: nothing to emit, and no
			// stored tuple can need deletion (a tuple t dominates in a
			// context where t is itself dominated cannot be in the
			// skyline there).
			return facts
		}
	}
	a.queue = a.queue[:0]
	for _, bm := range a.bottoms {
		if a.pruned[bm] != a.epoch {
			a.queue = append(a.queue, bm)
			a.inQueue[bm] = a.epoch
		}
	}
	stride, tv, idx := a.vw+1, t.Oriented, a.midx[m]
	for len(a.queue) > 0 {
		c := a.queue[0]
		a.queue = a.queue[1:]
		if a.pruned[c] == a.epoch {
			// Pruned after being enqueued; its parents are pruned too
			// (pruned sets are submask-closed), so drop the branch.
			continue
		}
		a.met.Traversed++
		ref := a.cellRef(t, c, m)
		cell := a.st.Load(ref)
		// Batched scan (kernel.go): four stored rows per pass, stopping at
		// the first one dominating t. One Comparison is charged per row
		// visited — the same sequence of logical rows the old
		// row-at-a-time loop walked (removals were order-preserving), so
		// the counter stays bit-identical.
		visited, dominated, rem := scanFirstDom(tv, cell.Rows, cell.Len(), stride, idx, a.remIdx[:0])
		a.met.Comparisons += int64(visited)
		if root {
			// Record one Proposition-4 relation per visited distinct tuple,
			// in row order, off the still-uncompacted page — the same uids
			// in the same order the interleaved loop recorded them.
			for i := 0; i < visited; i++ {
				if uid := cell.ID(i); !a.recSeen[uid] {
					a.recSeen[uid] = true
					u := a.tupleByID(uid)
					a.recs = append(a.recs, pairRec{sharedOf(t, u), subspace.Compare(t, u, a.m)})
				}
			}
		}
		changed := false
		if len(rem) > 0 {
			cell.RemoveSorted(rem)
			changed = true
		}
		a.remIdx = rem[:0]
		if dominated {
			// Prune C and all its ancestors (Alg. 4 lines 11–12).
			a.markSubmasksPruned(c)
		} else {
			if emitting {
				facts = a.emit(t, c, m, facts)
			}
			cell.Append(t.ID, tv)
			changed = true
			for cc := c; cc != 0; {
				bit := cc & -cc
				p := c &^ bit
				cc &^= bit
				if a.pruned[p] != a.epoch && a.inQueue[p] != a.epoch {
					a.inQueue[p] = a.epoch
					a.queue = append(a.queue, p)
				}
			}
		}
		if changed {
			a.st.Save(ref, cell)
		}
	}
	return facts
}

var _ Discoverer = (*BottomUp)(nil)
