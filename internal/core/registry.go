package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory constructs a Discoverer instance from a Config. Factories must
// be safe to call concurrently.
type Factory func(cfg Config) (Discoverer, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register installs a named algorithm factory. Names are lower-case and
// stable — they are the values accepted by NewDiscoverer (and hence by the
// public Options.Algorithm). Registering an empty name, a nil factory, or
// a name twice panics: registration happens at init time and a collision
// is a programming error.
func Register(name string, f Factory) {
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("core: Register: invalid algorithm name %q", name))
	}
	if f == nil {
		panic(fmt.Sprintf("core: Register: nil factory for %q", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: Register: algorithm %q already registered", name))
	}
	registry[name] = f
}

// NewDiscoverer instantiates the named algorithm. The name must have been
// registered; the error for an unknown name lists what is available.
func NewDiscoverer(name string, cfg Config) (Discoverer, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (have %s)",
			name, strings.Join(Algorithms(), ", "))
	}
	return f(cfg)
}

// Algorithms returns the registered algorithm names, sorted.
func Algorithms() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The eight paper algorithms plus the parallel drivers. The parallel
// entries consume Config.Workers; the sequential ones ignore it.
func init() {
	Register("bruteforce", func(cfg Config) (Discoverer, error) { return NewBruteForce(cfg) })
	Register("baselineseq", func(cfg Config) (Discoverer, error) { return NewBaselineSeq(cfg) })
	Register("baselineidx", func(cfg Config) (Discoverer, error) { return NewBaselineIdx(cfg) })
	Register("ccsc", func(cfg Config) (Discoverer, error) { return NewCCSC(cfg) })
	Register("bottomup", func(cfg Config) (Discoverer, error) { return NewBottomUp(cfg) })
	Register("topdown", func(cfg Config) (Discoverer, error) { return NewTopDown(cfg) })
	Register("sbottomup", func(cfg Config) (Discoverer, error) { return NewSBottomUp(cfg) })
	Register("stopdown", func(cfg Config) (Discoverer, error) { return NewSTopDown(cfg) })
	Register("parallel-topdown", func(cfg Config) (Discoverer, error) {
		return NewParallel(cfg, "topdown", cfg.Workers)
	})
	Register("parallel-bottomup", func(cfg Config) (Discoverer, error) {
		return NewParallel(cfg, "bottomup", cfg.Workers)
	})
}
