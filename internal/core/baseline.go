package core

import (
	"repro/internal/kdtree"
	"repro/internal/lattice"
	"repro/internal/relation"
)

// BaselineSeq is Algorithm 3 of the paper: for each measure subspace,
// sequentially scan all existing tuples; whenever one dominates t, remove
// the whole intersection lattice C^{t,t'} from the candidate set
// (Proposition 3). What survives the scan is S_t for that subspace.
type BaselineSeq struct {
	*base
	history []*relation.Tuple
	// maximalShared collects, per subspace, the maximal shared masks of
	// dominators seen in the current scan; a constraint mask is pruned iff
	// it is a submask of one of them. Keeping only maximal masks keeps the
	// membership test short.
	maximalShared []lattice.Mask
}

// NewBaselineSeq creates the algorithm.
func NewBaselineSeq(cfg Config) (*BaselineSeq, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &BaselineSeq{base: b}, nil
}

// Name implements Discoverer.
func (a *BaselineSeq) Name() string { return "BaselineSeq" }

// Process implements Discoverer.
func (a *BaselineSeq) Process(t *relation.Tuple) []Fact {
	a.met.Tuples++
	a.newTupleScratch(t)
	var facts []Fact
	for _, m := range a.subs {
		a.maximalShared = a.maximalShared[:0]
		full := false // becomes true when C^{t,t'} = C^t (everything pruned)
		for _, u := range a.history {
			a.met.Comparisons++
			if dominated, _ := a.cmpIn(t, u, m); dominated {
				sh := sharedOf(t, u)
				if a.addMaximalShared(sh) && sh == lattice.FullMask(a.d) {
					full = true
					break
				}
			}
		}
		if full {
			continue
		}
		for _, c := range a.ctMasks {
			a.met.Traversed++
			if !a.coveredByShared(c) {
				facts = a.emit(t, c, m, facts)
			}
		}
	}
	a.history = append(a.history, t)
	return facts
}

// addMaximalShared inserts sh into the maximal-shared set, returning true
// if sh is (now) present as a maximal element.
func (a *BaselineSeq) addMaximalShared(sh lattice.Mask) bool {
	for i, ex := range a.maximalShared {
		if sh&^ex == 0 { // sh ⊆ existing: nothing new
			return false
		}
		if ex&^sh == 0 { // existing ⊆ sh: replace (and absorb the rest below)
			a.maximalShared[i] = sh
			a.absorb(i)
			return true
		}
	}
	a.maximalShared = append(a.maximalShared, sh)
	return true
}

// absorb removes elements subsumed by the (just grown) element at i.
func (a *BaselineSeq) absorb(i int) {
	sh := a.maximalShared[i]
	out := a.maximalShared[:0]
	for j, ex := range a.maximalShared {
		if j == i || ex&^sh != 0 {
			out = append(out, ex)
		}
	}
	a.maximalShared = out
}

func (a *BaselineSeq) coveredByShared(c lattice.Mask) bool {
	for _, sh := range a.maximalShared {
		if c&^sh == 0 {
			return true
		}
	}
	return false
}

var _ Discoverer = (*BaselineSeq)(nil)

// BaselineIdx is the paper's indexed baseline: instead of scanning all
// tuples, a k-d tree over the measure space answers the one-sided range
// query ⋀_{m_i ∈ M}(m_i ≥ t.m_i); the retrieved candidates (filtered for
// strict dominance) drive the same Proposition-3 pruning as BaselineSeq.
type BaselineIdx struct {
	*base
	tree *kdtree.Tree
	seq  BaselineSeq // reuse the maximal-shared machinery
}

// NewBaselineIdx creates the algorithm.
func NewBaselineIdx(cfg Config) (*BaselineIdx, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &BaselineIdx{base: b, tree: kdtree.New(cfg.Schema.NumMeasures()), seq: BaselineSeq{base: b}}, nil
}

// Name implements Discoverer.
func (a *BaselineIdx) Name() string { return "BaselineIdx" }

// Process implements Discoverer.
func (a *BaselineIdx) Process(t *relation.Tuple) []Fact {
	a.met.Tuples++
	a.newTupleScratch(t)
	var facts []Fact
	for _, m := range a.subs {
		a.seq.maximalShared = a.seq.maximalShared[:0]
		full := false
		a.tree.DominatorsOrBetter(t, m, func(u *relation.Tuple) bool {
			a.met.Comparisons++
			// The query returns u ≽_M t including ties; keep strict
			// dominators only.
			if dominated, _ := a.cmpIn(t, u, m); dominated {
				sh := sharedOf(t, u)
				if a.seq.addMaximalShared(sh) && sh == lattice.FullMask(a.d) {
					full = true
					return false
				}
			}
			return true
		})
		if full {
			continue
		}
		for _, c := range a.ctMasks {
			a.met.Traversed++
			if !a.seq.coveredByShared(c) {
				facts = a.emit(t, c, m, facts)
			}
		}
	}
	a.tree.Insert(t)
	return facts
}

var _ Discoverer = (*BaselineIdx)(nil)
