package core

import (
	"repro/internal/relation"
	"repro/internal/subspace"
)

// BruteForce is Algorithm 2 of the paper: for every measure subspace and
// every constraint satisfied by the new tuple, scan the entire history to
// check whether some earlier tuple in the context dominates it. It is the
// yardstick the three optimisation ideas are measured against; complexity
// O(2^m̂ · |C^t| · n) per arrival.
type BruteForce struct {
	*base
	history []*relation.Tuple
}

// NewBruteForce creates the algorithm.
func NewBruteForce(cfg Config) (*BruteForce, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &BruteForce{base: b}, nil
}

// Name implements Discoverer.
func (a *BruteForce) Name() string { return "BruteForce" }

// Process implements Discoverer (Alg. 2 verbatim: the t' ∈ σ_C(R) check is
// the satisfaction test against each constraint).
func (a *BruteForce) Process(t *relation.Tuple) []Fact {
	a.met.Tuples++
	a.newTupleScratch(t)
	var facts []Fact
	for _, m := range a.subs {
		for _, c := range a.ctMasks {
			a.met.Traversed++
			pruned := false
			for _, u := range a.history {
				a.met.Comparisons++
				if dominated, _ := a.cmpIn(t, u, m); dominated {
					// t' ∈ σ_C(R) ⇔ C ⊆ shared(t, t') in mask terms.
					if satisfiesMask(t, u, c) {
						pruned = true
						break
					}
				}
			}
			if !pruned {
				facts = a.emit(t, c, m, facts)
			}
		}
	}
	a.history = append(a.history, t)
	return facts
}

// satisfiesMask reports whether u satisfies the constraint of C^t selected
// by mask c, i.e. u agrees with t on every bound attribute.
func satisfiesMask(t, u *relation.Tuple, c uint32) bool {
	for i := 0; c != 0; i++ {
		bit := uint32(1) << uint(i)
		if c&bit == 0 {
			continue
		}
		c &^= bit
		if t.Dims[i] != u.Dims[i] {
			return false
		}
	}
	return true
}

var _ Discoverer = (*BruteForce)(nil)

// Oracle is a slow but independently-derived reference implementation used
// by the test suite: it decides each (C, M) membership from first
// principles using one Proposition-4 comparison per historical tuple.
// Unlike BruteForce it shares nothing with the lattice traversal code
// paths, which makes it a meaningful differential-testing target.
type Oracle struct {
	*base
	history []*relation.Tuple
}

// NewOracle creates the reference discoverer.
func NewOracle(cfg Config) (*Oracle, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &Oracle{base: b}, nil
}

// Name implements Discoverer.
func (a *Oracle) Name() string { return "Oracle" }

// Process implements Discoverer.
func (a *Oracle) Process(t *relation.Tuple) []Fact {
	a.met.Tuples++
	a.newTupleScratch(t)
	// For each historical tuple record (shared mask, relation); then (C,M)
	// is a fact iff no record has C ⊆ shared and t dominated in M.
	type rec struct {
		shared uint32
		rel    subspace.Relation
	}
	recs := make([]rec, 0, len(a.history))
	for _, u := range a.history {
		a.met.Comparisons++
		recs = append(recs, rec{sharedOf(t, u), subspace.Compare(t, u, a.m)})
	}
	var facts []Fact
	for _, m := range a.subs {
		for _, c := range a.ctMasks {
			a.met.Traversed++
			dominated := false
			for _, r := range recs {
				if c&^r.shared == 0 && r.rel.DominatedIn(m) {
					dominated = true
					break
				}
			}
			if !dominated {
				facts = a.emit(t, c, m, facts)
			}
		}
	}
	a.history = append(a.history, t)
	return facts
}

func sharedOf(t, u *relation.Tuple) uint32 {
	var m uint32
	for i := range t.Dims {
		if t.Dims[i] == u.Dims[i] {
			m |= 1 << uint(i)
		}
	}
	return m
}

var _ Discoverer = (*Oracle)(nil)
