package core

import (
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

// CanDelete reports deletion support; true for the whole BottomUp family.
// The engine layer discovers deletion capability through this method
// rather than by concrete type, so wrappers (e.g. Parallel over BottomUp
// workers) can offer it too.
func (a *BottomUp) CanDelete() bool { return true }

// Delete removes tuple u from the BottomUp-family state, repairing
// Invariant 1 exactly — the paper's §VIII "allowing deletion and update of
// data" future-work item. alive must be the remaining relation (u already
// excluded, or present and skipped by ID — both work).
//
// Only cells where u was itself a skyline tuple need repair: if u was
// dominated at (C,M) by some skyline tuple s, then any tuple u dominated
// there is also dominated by s (transitivity), so u's removal cannot
// promote anyone. Where u was in the skyline, the re-entrants are the
// context tuples u dominated that no surviving skyline tuple nor fellow
// candidate dominates; checking candidates against (old cell ∖ u) ∪
// candidates is complete because any dominator chases up to a skyline
// tuple of the shrunken context, which lies in exactly that union.
//
// Cost: O(|C^u| · #subspaces · n) per deletion — a scan per affected
// cell. Deletions are expected to be rare relative to arrivals; the
// TopDown family does not support deletion (re-deriving maximal skyline
// constraints for promoted tuples requires global recomputation), which
// mirrors the trade-off the two storage schemes already embody.
func (a *BottomUp) Delete(u *relation.Tuple, alive []*relation.Tuple) {
	a.newTupleScratch(u)
	subs := a.subs
	if a.shared && a.mhat < a.m {
		// The sharing root pass maintains full-space cells too.
		subs = append(append([]subspace.Mask(nil), subs...), a.fullM)
	}
	for _, m := range subs {
		idx := a.indices(m)
		for _, c := range a.ctMasks {
			ref := a.cellRef(u, c, m)
			cell := a.st.Load(ref)
			if cell.Len() == 0 {
				continue
			}
			if !cell.RemoveID(u.ID) {
				continue // u was not in this skyline: nothing changes
			}
			// Collect the context tuples u was dominating here.
			var cands []*relation.Tuple
			for _, w := range alive {
				if w.ID == u.ID || !satisfiesMask(u, w, c) {
					continue
				}
				a.met.Comparisons++
				if _, doms := cmpVecs(u.Oriented, w.Oriented, idx); doms {
					cands = append(cands, w)
				}
			}
			for _, w := range cands {
				dominated := false
				for i := 0; i < cell.Len(); i++ {
					a.met.Comparisons++
					if _, doms := cmpVecs(cell.Row(i), w.Oriented, idx); doms {
						dominated = true
						break
					}
				}
				if !dominated {
					for _, x := range cands {
						if x.ID == w.ID {
							continue
						}
						a.met.Comparisons++
						if _, doms := cmpVecs(x.Oriented, w.Oriented, idx); doms {
							dominated = true
							break
						}
					}
				}
				if !dominated {
					cell.Append(w.ID, w.Oriented)
				}
			}
			a.st.Save(ref, cell)
		}
	}
}

// Delete removes a tuple from the Oracle's history (test support for
// differential deletion testing).
func (a *Oracle) Delete(u *relation.Tuple) {
	for i, w := range a.history {
		if w.ID == u.ID {
			a.history = append(a.history[:i], a.history[i+1:]...)
			return
		}
	}
}

// Unobserve reverses Observe for a deleted tuple, keeping |σ_C(R)|
// counters exact under deletion.
func (cc *ContextCounter) Unobserve(t *relation.Tuple) {
	for _, m := range cc.masks {
		k := lattice.KeyFromTuple(t, m)
		if n := cc.counts[k] - 1; n > 0 {
			cc.counts[k] = n
		} else {
			delete(cc.counts, k)
		}
	}
}
