package core

import "math/bits"

// Batched dominance kernels. The discovery algorithms spend most of their
// time comparing an arriving tuple's oriented vector against the packed
// rows of a µ(C,M) cell (stride 1+W: one id slot, then the vector). The
// single-row kernel cmpVecs (core.go) streams one row per call; the
// kernels here walk the flat row page directly and test the candidate
// against two or four stored rows per pass, so the candidate's
// coordinates and the subspace's index list load once per pass instead of
// once per row. Per-row verdicts are bit-identical to cmpVecs; only the
// early-exit granularity moves — a multi-row pass bails out when EVERY
// lane has become incomparable, where the single-row kernel bails per
// row. Work counters are unaffected: callers charge Comparisons per row
// VISITED, which the scan helpers report independently of how many float
// compares a pass actually executed.
//
// Lane encoding: bit l of the returned masks refers to row l of the pass.
// dom bit set = that row dominates the candidate (t ≺ u); doms bit set =
// the candidate dominates that row (t ≻ u).

// cmpVecs2 compares tv against the two rows starting at element offsets
// k0 and k1 of the packed page (vector at offset +1 of each row), over
// the measure indices idx.
func cmpVecs2(tv, rows []float64, k0, k1 int, idx []uint8) (dom, doms uint8) {
	var gt, lt uint8
	for _, j := range idx {
		a, o := tv[j], int(j)+1
		b0, b1 := rows[k0+o], rows[k1+o]
		if a > b0 {
			gt |= 1
		} else if a < b0 {
			lt |= 1
		}
		if a > b1 {
			gt |= 2
		} else if a < b1 {
			lt |= 2
		}
		if gt&lt == 3 { // every lane incomparable: no verdict can emerge
			return 0, 0
		}
	}
	return lt &^ gt, gt &^ lt
}

// cmpVecs4 is the four-row form of cmpVecs2 — the production pass width
// of the cell scans below.
func cmpVecs4(tv, rows []float64, k0, k1, k2, k3 int, idx []uint8) (dom, doms uint8) {
	var gt, lt uint8
	for _, j := range idx {
		a, o := tv[j], int(j)+1
		b0, b1, b2, b3 := rows[k0+o], rows[k1+o], rows[k2+o], rows[k3+o]
		if a > b0 {
			gt |= 1
		} else if a < b0 {
			lt |= 1
		}
		if a > b1 {
			gt |= 2
		} else if a < b1 {
			lt |= 2
		}
		if a > b2 {
			gt |= 4
		} else if a < b2 {
			lt |= 4
		}
		if a > b3 {
			gt |= 8
		} else if a < b3 {
			lt |= 8
		}
		if gt&lt == 15 {
			return 0, 0
		}
	}
	return lt &^ gt, gt &^ lt
}

// scanFirstDom walks a cell's n packed rows front to back, four per pass,
// comparing tv against each stored vector. It stops at the first row that
// dominates tv — BottomUp's Invariant-1 break — and returns the number of
// rows visited (the caller's Comparisons charge: every row up to and
// including the dominator, or all n), whether a dominator was found, and
// rem extended with the indices of visited rows tv dominates. Rows past
// the first dominator are never reported even when a wide pass happened
// to test them, so verdict order matches the row-at-a-time scan exactly.
func scanFirstDom(tv, rows []float64, n, stride int, idx []uint8, rem []int) (visited int, dominated bool, _ []int) {
	i, k := 0, 0
	for ; i+4 <= n; i, k = i+4, k+4*stride {
		dom, doms := cmpVecs4(tv, rows, k, k+stride, k+2*stride, k+3*stride, idx)
		if dom|doms == 0 {
			continue
		}
		for l := 0; l < 4; l++ {
			if dom&(1<<l) != 0 {
				return i + l + 1, true, rem
			}
			if doms&(1<<l) != 0 {
				rem = append(rem, i+l)
			}
		}
	}
	for ; i < n; i, k = i+1, k+stride {
		d, ds := cmpVecs(tv, rows[k+1:k+stride], idx)
		if d {
			return i + 1, true, rem
		}
		if ds {
			rem = append(rem, i)
		}
	}
	return n, false, rem
}

// scanAll compares tv against every one of the n packed rows, four per
// pass, appending the indices of rows that dominate tv to dom and of rows
// tv dominates to doms (both in row order). TopDown visits every row of a
// cell — no early break — so the caller charges n Comparisons.
func scanAll(tv, rows []float64, n, stride int, idx []uint8, dom, doms []int) ([]int, []int) {
	i, k := 0, 0
	for ; i+4 <= n; i, k = i+4, k+4*stride {
		db, dsb := cmpVecs4(tv, rows, k, k+stride, k+2*stride, k+3*stride, idx)
		for b := db; b != 0; b &= b - 1 {
			dom = append(dom, i+bits.TrailingZeros8(b))
		}
		for b := dsb; b != 0; b &= b - 1 {
			doms = append(doms, i+bits.TrailingZeros8(b))
		}
	}
	for ; i < n; i, k = i+1, k+stride {
		d, ds := cmpVecs(tv, rows[k+1:k+stride], idx)
		if d {
			dom = append(dom, i)
		}
		if ds {
			doms = append(doms, i)
		}
	}
	return dom, doms
}

// scanFirstDom1 and scanFirstDom2 are the one- and two-row-per-pass
// forms of scanFirstDom, kept as benchmark baselines (scanFirstDom1 is
// the shape of the pre-batching inner loop): BenchmarkCmpKernel pins the
// production four-row kernel against them at Fig-7 warm points.
func scanFirstDom1(tv, rows []float64, n, stride int, idx []uint8, rem []int) (visited int, dominated bool, _ []int) {
	for i, k := 0, 0; i < n; i, k = i+1, k+stride {
		d, ds := cmpVecs(tv, rows[k+1:k+stride], idx)
		if d {
			return i + 1, true, rem
		}
		if ds {
			rem = append(rem, i)
		}
	}
	return n, false, rem
}

func scanFirstDom2(tv, rows []float64, n, stride int, idx []uint8, rem []int) (visited int, dominated bool, _ []int) {
	i, k := 0, 0
	for ; i+2 <= n; i, k = i+2, k+2*stride {
		dom, doms := cmpVecs2(tv, rows, k, k+stride, idx)
		if dom|doms == 0 {
			continue
		}
		for l := 0; l < 2; l++ {
			if dom&(1<<l) != 0 {
				return i + l + 1, true, rem
			}
			if doms&(1<<l) != 0 {
				rem = append(rem, i+l)
			}
		}
	}
	if i < n {
		d, ds := cmpVecs(tv, rows[k+1:k+stride], idx)
		if d {
			return i + 1, true, rem
		}
		if ds {
			rem = append(rem, i)
		}
	}
	return n, false, rem
}
