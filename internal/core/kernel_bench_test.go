package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkCmpKernel pins the batched dominance kernel (kernel.go)
// against its one- and two-row-per-pass baselines on a Fig 7 warm-point
// cell shape: NBA gamelogs at d=5, m=7 keep cells of a few dozen stored
// rows hot, and the full 7-measure vector is the widest compare the
// figure exercises. Sub-benchmarks are named by pass width — 1rows is
// the PR4 single-row kernel, 4rows the production scanFirstDom — so
// `-bench CmpKernel` reads as a before/after column. Two workloads:
// "survive" never finds a dominator (every row visited, the steady-state
// cost of a skyline-bound arrival), "domEarly" is dominated a third of
// the way in (Invariant 1's break path).
func BenchmarkCmpKernel(b *testing.B) {
	const (
		w      = 7  // Fig 7 measure width (m=7)
		n      = 64 // warm-cell stored rows
		stride = 1 + w
	)
	idx := make([]uint8, w)
	for i := range idx {
		idx[i] = uint8(i)
	}
	rows := kernelBenchRows(n, w, stride)
	kernels := []struct {
		name string
		scan func(tv, rows []float64, n, stride int, idx []uint8, rem []int) (int, bool, []int)
	}{
		{"1rows", scanFirstDom1},
		{"2rows", scanFirstDom2},
		{"4rows", scanFirstDom},
	}
	workloads := []struct {
		name string
		tv   []float64
	}{
		// Beats even the planted row on measure 0: incomparable with all
		// n rows, the scan runs its full length.
		{"survive", kernelBenchTuple(w, 5)},
		// Loses to the planted dominator at index n/3 but beats every
		// random row on measure 0: Invariant 1's break path, a third in.
		{"domEarly", kernelBenchTuple(w, 3)},
	}
	for _, k := range kernels {
		for _, wl := range workloads {
			b.Run(fmt.Sprintf("%s/%s", k.name, wl.name), func(b *testing.B) {
				var visited int
				for i := 0; i < b.N; i++ {
					v, _, _ := k.scan(wl.tv, rows, n, stride, idx, nil)
					visited += v
				}
				b.ReportMetric(float64(visited)/float64(b.N), "rowsvisited/op")
			})
		}
	}
}

// kernelBenchRows packs n stored rows of width w: random measure values
// in [1, 2) (pairwise incomparable with high probability) plus one
// planted row at index n/3 that is constant 4 on every measure — the
// dominator the domEarly workload breaks on.
func kernelBenchRows(n, w, stride int) []float64 {
	rng := rand.New(rand.NewSource(7))
	rows := make([]float64, n*stride)
	for r := 0; r < n; r++ {
		rows[r*stride] = float64(r) // id slot, never compared
		for j := 0; j < w; j++ {
			rows[r*stride+1+j] = 1 + rng.Float64()
		}
	}
	for j := 0; j < w; j++ {
		rows[(n/3)*stride+1+j] = 4
	}
	return rows
}

// kernelBenchTuple is an arriving vector that is `first` on measure 0 and
// 0.5 elsewhere: it loses to a stored row only if that row beats `first`,
// so first=5 survives the planted 4s and first=3 does not.
func kernelBenchTuple(w int, first float64) []float64 {
	tv := make([]float64, w)
	for j := range tv {
		tv[j] = 0.5
	}
	tv[0] = first
	return tv
}

// TestCmpKernelBenchAgreement guards the benchmark itself: all three
// pass widths must agree on verdict and rows visited for both workloads
// (the bit-identical-counters contract the kernels are built on), and
// the workloads must exercise the paths their names claim.
func TestCmpKernelBenchAgreement(t *testing.T) {
	const w, n, stride = 7, 64, 8
	idx := make([]uint8, w)
	for i := range idx {
		idx[i] = uint8(i)
	}
	rows := kernelBenchRows(n, w, stride)
	for _, tc := range []struct {
		name        string
		tv          []float64
		wantVisited int
		wantDom     bool
	}{
		{"survive", kernelBenchTuple(w, 5), n, false},
		{"domEarly", kernelBenchTuple(w, 3), n/3 + 1, true},
	} {
		v1, d1, _ := scanFirstDom1(tc.tv, rows, n, stride, idx, nil)
		v2, d2, _ := scanFirstDom2(tc.tv, rows, n, stride, idx, nil)
		v4, d4, _ := scanFirstDom(tc.tv, rows, n, stride, idx, nil)
		if v1 != v2 || v1 != v4 || d1 != d2 || d1 != d4 {
			t.Errorf("%s: kernels disagree: 1rows (%d,%v) 2rows (%d,%v) 4rows (%d,%v)",
				tc.name, v1, d1, v2, d2, v4, d4)
		}
		if v1 != tc.wantVisited || d1 != tc.wantDom {
			t.Errorf("%s: visited %d dominated %v, want %d %v",
				tc.name, v1, d1, tc.wantVisited, tc.wantDom)
		}
	}
}
