package core

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/store"
)

// TestDeleteDifferential interleaves arrivals and deletions, checking
// after every operation that (a) the next arrival's fact set matches a
// fresh Oracle over the live history and (b) Invariant 1 holds.
func TestDeleteDifferential(t *testing.T) {
	const d, m = 3, 2
	rng := rand.New(rand.NewSource(4242))
	tb := randomTable(t, rng, 60, d, m, 2, 3)

	for _, shared := range []bool{false, true} {
		name := "BottomUp"
		mk := NewBottomUp
		if shared {
			name = "SBottomUp"
			mk = NewSBottomUp
		}
		t.Run(name, func(t *testing.T) {
			mem := store.NewMemory(tb.Schema().NumMeasures())
			alg, err := mk(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1, Store: mem})
			if err != nil {
				t.Fatal(err)
			}
			var live []*relation.Tuple
			for i, tu := range tb.Tuples() {
				// Cross-check the arrival against a fresh oracle replaying
				// the live history.
				oracle, err := NewOracle(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1})
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range live {
					oracle.Process(w)
				}
				want := oracle.Process(tu)
				got := alg.Process(tu)
				if ok, why := sameFacts(want, got); !ok {
					t.Fatalf("arrival %d after deletions: %s", i, why)
				}
				live = append(live, tu)

				// Every third arrival, delete a random live tuple.
				if i%3 == 2 && len(live) > 1 {
					victim := rng.Intn(len(live))
					vt := live[victim]
					live = append(live[:victim], live[victim+1:]...)
					alg.Delete(vt, live)
				}
				if i%10 == 9 {
					checkInvariant1(t, mem, live, d, d, m, m, false)
				}
			}
		})
	}
}

// TestDeleteLastTuple: deleting the only tuple empties every cell.
func TestDeleteLastTuple(t *testing.T) {
	tb := table4(t)
	mem := store.NewMemory(tb.Schema().NumMeasures())
	alg, err := NewBottomUp(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1, Store: mem})
	if err != nil {
		t.Fatal(err)
	}
	tu := tb.Tuples()[0]
	alg.Process(tu)
	if mem.Stats().StoredTuples == 0 {
		t.Fatal("nothing stored after first arrival")
	}
	alg.Delete(tu, nil)
	if got := mem.Stats().StoredTuples; got != 0 {
		t.Errorf("stored entries after deleting the only tuple = %d, want 0", got)
	}
}

// TestDeletePromotes: a tuple suppressed by the deleted one re-enters.
func TestDeletePromotes(t *testing.T) {
	tb := table4(t) // t4=(20,20) dominates everything in full space
	mem := store.NewMemory(tb.Schema().NumMeasures())
	alg, err := NewBottomUp(Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1, Store: mem})
	if err != nil {
		t.Fatal(err)
	}
	ts := tb.Tuples()
	for _, tu := range ts {
		alg.Process(tu)
	}
	// Before: µ(⊤, full) = {t4}.
	topKey := store.CellKey{C: lattice.Top(3).Key(), M: 0b11}
	if cell := mem.LoadKey(topKey); cell.Len() != 1 || cell.ID(0) != 3 {
		t.Fatalf("µ(⊤, full) = %v before delete", cell.IDList())
	}
	// Delete t4: t3 (17,17) and t5 (11,15)... t5 is dominated by t3; the
	// new top skyline is {t3}. t2=(15,10): dominated by t3 too. t1=(10,15)
	// dominated by t3.
	live := append(append([]*relation.Tuple(nil), ts[:3]...), ts[4])
	alg.Delete(ts[3], live)
	cell := mem.LoadKey(topKey)
	if cell.Len() != 1 || cell.ID(0) != 2 {
		t.Errorf("µ(⊤, full) after deleting t4 = %v, want {t3}", cell.IDList())
	}
	checkInvariant1(t, mem, live, 3, 3, 2, 2, false)
}
