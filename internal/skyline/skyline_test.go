package skyline

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

// paperTable builds Table IV of the paper: 5 tuples over d1..d3, m1, m2.
func paperTable(t *testing.T) *relation.Table {
	t.Helper()
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d1"}, {Name: "d2"}, {Name: "d3"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(s)
	rows := []struct {
		d []string
		m []float64
	}{
		{[]string{"a1", "b2", "c2"}, []float64{10, 15}}, // t1
		{[]string{"a1", "b1", "c1"}, []float64{15, 10}}, // t2
		{[]string{"a2", "b1", "c2"}, []float64{17, 17}}, // t3
		{[]string{"a2", "b1", "c1"}, []float64{20, 20}}, // t4
		{[]string{"a1", "b1", "c1"}, []float64{11, 15}}, // t5
	}
	for _, r := range rows {
		if _, err := tb.Append(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func ids(ts []*relation.Tuple) map[int64]bool {
	m := make(map[int64]bool, len(ts))
	for _, t := range ts {
		m[t.ID] = true
	}
	return m
}

func TestComputePaperExample3(t *testing.T) {
	tb := paperTable(t)
	// Example 3: λ_M(R) = {t4} in the full space.
	sky := Compute(tb.Tuples(), 0b11)
	got := ids(sky)
	if len(got) != 1 || !got[3] {
		t.Errorf("full-space skyline IDs = %v, want {t4}", got)
	}
}

func TestContextualPaperExample3(t *testing.T) {
	tb := paperTable(t)
	// C = 〈a1, b1, c1〉 → σ_C(R) = {t2, t5}; λ = {t2, t5} in full space,
	// {t2} in {m1}.
	c := lattice.Constraint{Vals: []int32{0, 0, 0}} // codes follow first-seen: a1=0? verify
	// a1 was seen first for d1, b2 first for d2, c2 first for d3.
	d1a1, _ := tb.Dict().Lookup(0, "a1")
	d2b1, _ := tb.Dict().Lookup(1, "b1")
	d3c1, _ := tb.Dict().Lookup(2, "c1")
	c = lattice.Constraint{Vals: []int32{d1a1, d2b1, d3c1}}

	sky := Contextual(tb.Tuples(), c, 0b11)
	got := ids(sky)
	if len(got) != 2 || !got[1] || !got[4] {
		t.Errorf("contextual skyline = %v, want {t2, t5}", got)
	}
	sky = Contextual(tb.Tuples(), c, 0b01)
	got = ids(sky)
	if len(got) != 1 || !got[1] {
		t.Errorf("contextual skyline in {m1} = %v, want {t2}", got)
	}
}

func TestIsSkyline(t *testing.T) {
	tb := paperTable(t)
	ts := tb.Tuples()
	if !IsSkyline(ts[3], ts, 0b11) {
		t.Error("t4 must be a skyline tuple")
	}
	if IsSkyline(ts[4], ts, 0b11) {
		t.Error("t5 is dominated by t4 in full space")
	}
}

func TestSkycubeConsistency(t *testing.T) {
	tb := paperTable(t)
	cube := Skycube(tb.Tuples(), 2, -1)
	if len(cube) != 3 {
		t.Fatalf("skycube has %d subspaces, want 3", len(cube))
	}
	for sub, sky := range cube {
		for _, u := range tb.Tuples() {
			want := IsSkyline(u, tb.Tuples(), sub)
			got := ids(sky)[u.ID]
			if got != want {
				t.Errorf("subspace %b tuple t%d: in cube %v, IsSkyline %v", sub, u.ID+1, got, want)
			}
		}
	}
}

func TestMinimalSubspaces(t *testing.T) {
	tb := paperTable(t)
	ts := tb.Tuples()
	// t4 dominates everything: skyline in every subspace; minimal = {m1},{m2}.
	min4 := MinimalSubspaces(ts[3], ts, 2, -1)
	if len(min4) != 2 {
		t.Fatalf("minimal subspaces of t4 = %b, want {m1},{m2}", min4)
	}
	// t2 (15,10): in {m1} dominated by t3(17),t4(20) → not skyline. In
	// {m2} dominated. In {m1,m2}: t3,t4 both better on both → dominated.
	min2 := MinimalSubspaces(ts[1], ts, 2, -1)
	if len(min2) != 0 {
		t.Errorf("minimal subspaces of t2 = %b, want none", min2)
	}
}

func TestFilterMinimal(t *testing.T) {
	in := []subspace.Mask{0b01, 0b11, 0b10}
	out := FilterMinimal(in)
	if len(out) != 2 {
		t.Fatalf("FilterMinimal = %b", out)
	}
	for _, m := range out {
		if m == 0b11 {
			t.Error("0b11 should be filtered (superset of 0b01)")
		}
	}
	if got := FilterMinimal(nil); len(got) != 0 {
		t.Errorf("FilterMinimal(nil) = %v", got)
	}
}

func TestComputeEmptyAndSingle(t *testing.T) {
	if got := Compute(nil, 0b1); len(got) != 0 {
		t.Errorf("skyline of empty set = %v", got)
	}
	tb := paperTable(t)
	one := tb.Tuples()[:1]
	if got := Compute(one, 0b11); len(got) != 1 {
		t.Errorf("skyline of singleton = %v", got)
	}
}

func TestComputeDuplicates(t *testing.T) {
	// Tuples with identical measure vectors do not dominate each other;
	// both stay in the skyline (Def. 2 requires strict betterness).
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	tb := relation.NewTable(s)
	tb.Append([]string{"x"}, []float64{5, 5})
	tb.Append([]string{"y"}, []float64{5, 5})
	sky := Compute(tb.Tuples(), 0b11)
	if len(sky) != 2 {
		t.Errorf("duplicate tuples: skyline size = %d, want 2", len(sky))
	}
}

// Randomised cross-check: block-nested-loop skyline vs quadratic IsSkyline.
func TestComputeRandomCrossCheck(t *testing.T) {
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}, {Name: "m3"}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		tb := relation.NewTable(s)
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			tb.AppendEncoded([]int32{0},
				[]float64{float64(rng.Intn(8)), float64(rng.Intn(8)), float64(rng.Intn(8))})
		}
		for sub := subspace.Mask(1); sub < 8; sub++ {
			sky := ids(Compute(tb.Tuples(), sub))
			for _, u := range tb.Tuples() {
				if sky[u.ID] != IsSkyline(u, tb.Tuples(), sub) {
					t.Fatalf("trial %d subspace %b tuple %d: mismatch", trial, sub, u.ID)
				}
			}
		}
	}
}
