// Package skyline provides reference (non-incremental) skyline computation:
// block-nested-loop skylines, contextual skylines λ_M(σ_C(R)), and a full
// skycube. These serve as correctness oracles for the incremental discovery
// algorithms and as building blocks of the CSC comparator.
package skyline

import (
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/subspace"
)

// Compute returns the skyline tuples of ts in measure subspace m using a
// block-nested-loop scan with in-window elimination. The result preserves
// first-arrival order of the survivors.
func Compute(ts []*relation.Tuple, m subspace.Mask) []*relation.Tuple {
	var window []*relation.Tuple
	for _, t := range ts {
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			if subspace.Dominates(w, t, m) {
				dominated = true
				keep = append(keep, w)
				continue
			}
			if !subspace.Dominates(t, w, m) {
				keep = append(keep, w)
			}
		}
		window = keep
		if !dominated {
			window = append(window, t)
		}
	}
	return window
}

// Contextual returns λ_M(σ_C(R)): the skyline, in subspace m, of the
// tuples of ts satisfying constraint c.
func Contextual(ts []*relation.Tuple, c lattice.Constraint, m subspace.Mask) []*relation.Tuple {
	var ctx []*relation.Tuple
	for _, t := range ts {
		if c.Satisfies(t) {
			ctx = append(ctx, t)
		}
	}
	return Compute(ctx, m)
}

// IsSkyline reports whether t belongs to the skyline of ts in subspace m,
// assuming t itself is among ts (duplicate measure vectors do not dominate
// each other, so membership of t in ts is harmless either way).
func IsSkyline(t *relation.Tuple, ts []*relation.Tuple, m subspace.Mask) bool {
	for _, u := range ts {
		if u != t && subspace.Dominates(u, t, m) {
			return false
		}
	}
	return true
}

// Skycube computes, for every non-empty measure subspace with |M| ≤
// maxSize, the skyline of ts. Keys are subspace masks. It is the reference
// for Pei et al.'s skycube and is used to validate the CSC implementation.
func Skycube(ts []*relation.Tuple, m int, maxSize int) map[subspace.Mask][]*relation.Tuple {
	out := make(map[subspace.Mask][]*relation.Tuple)
	for _, sub := range subspace.Enumerate(m, maxSize) {
		out[sub] = Compute(ts, sub)
	}
	return out
}

// MinimalSubspaces returns the minimal (by set inclusion) measure subspaces
// in which t is a skyline tuple of ts, considering subspaces up to maxSize
// attributes. These are the "minimum subspaces" in which the compressed
// skycube (Xia & Zhang) stores a tuple.
func MinimalSubspaces(t *relation.Tuple, ts []*relation.Tuple, m int, maxSize int) []subspace.Mask {
	var sky []subspace.Mask
	for _, sub := range subspace.Enumerate(m, maxSize) {
		if IsSkyline(t, ts, sub) {
			sky = append(sky, sub)
		}
	}
	return FilterMinimal(sky)
}

// FilterMinimal keeps only the masks that have no proper submask in the
// input set.
func FilterMinimal(masks []subspace.Mask) []subspace.Mask {
	var out []subspace.Mask
	for _, a := range masks {
		minimal := true
		for _, b := range masks {
			if b != a && b&^a == 0 { // b ⊂ a
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, a)
		}
	}
	return out
}
