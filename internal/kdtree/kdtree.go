// Package kdtree implements a k-d tree (Bentley 1979) over the measure
// space of a relation, supporting incremental insertion and the one-sided
// range queries BaselineIdx needs: find all tuples whose oriented measure
// values are ≥ a query point on every attribute of a measure subspace
// (attributes outside the subspace are unconstrained).
package kdtree

import (
	"repro/internal/relation"
	"repro/internal/subspace"
)

// Tree is a k-d tree over tuples' Oriented measure vectors. The tree is
// built by sequential insertion (the discovery workload is a stream); no
// rebalancing is performed, matching the paper's baseline.
type Tree struct {
	k     int // number of measure attributes
	nodes []node
	root  int32
}

type node struct {
	t           *relation.Tuple
	left, right int32
}

const nilNode = int32(-1)

// New creates an empty tree over k measure attributes.
func New(k int) *Tree {
	if k <= 0 {
		panic("kdtree: k must be positive")
	}
	return &Tree{k: k, root: nilNode}
}

// Len returns the number of stored tuples.
func (tr *Tree) Len() int { return len(tr.nodes) }

// Insert adds t to the tree.
func (tr *Tree) Insert(t *relation.Tuple) {
	idx := int32(len(tr.nodes))
	tr.nodes = append(tr.nodes, node{t: t, left: nilNode, right: nilNode})
	if tr.root == nilNode {
		tr.root = idx
		return
	}
	cur := tr.root
	depth := 0
	for {
		axis := depth % tr.k
		n := &tr.nodes[cur]
		if t.Oriented[axis] < n.t.Oriented[axis] {
			if n.left == nilNode {
				n.left = idx
				return
			}
			cur = n.left
		} else {
			if n.right == nilNode {
				n.right = idx
				return
			}
			cur = n.right
		}
		depth++
	}
}

// DominatorsOrBetter calls fn for every stored tuple u whose oriented
// values satisfy u.Oriented[i] ≥ q.Oriented[i] for every attribute i of
// sub. This is the one-sided range query ⋀_{m_i ∈ M}(m_i ≥ t.m_i) of the
// paper's BaselineIdx; callers filter for strict dominance.
//
// If fn returns false the search stops early.
func (tr *Tree) DominatorsOrBetter(q *relation.Tuple, sub subspace.Mask, fn func(*relation.Tuple) bool) {
	if tr.root == nilNode {
		return
	}
	tr.search(tr.root, 0, q, sub, fn)
}

func (tr *Tree) search(idx int32, depth int, q *relation.Tuple, sub subspace.Mask, fn func(*relation.Tuple) bool) bool {
	n := &tr.nodes[idx]
	if matches(n.t, q, sub) {
		if !fn(n.t) {
			return false
		}
	}
	axis := depth % tr.k
	// The right subtree (coordinates ≥ split value) can always contain
	// qualifying points. The left subtree (coordinates < split value) is
	// pruned when the axis is constrained and the split value is already
	// ≤ the query bound: everything to the left would fail the bound.
	if n.right != nilNode {
		if !tr.search(n.right, depth+1, q, sub, fn) {
			return false
		}
	}
	if n.left != nilNode {
		constrained := sub&(1<<uint(axis)) != 0
		if !constrained || n.t.Oriented[axis] > q.Oriented[axis] {
			if !tr.search(n.left, depth+1, q, sub, fn) {
				return false
			}
		}
	}
	return true
}

func matches(u, q *relation.Tuple, sub subspace.Mask) bool {
	for i := 0; sub != 0; i++ {
		bit := subspace.Mask(1) << uint(i)
		if sub&bit == 0 {
			continue
		}
		sub &^= bit
		if u.Oriented[i] < q.Oriented[i] {
			return false
		}
	}
	return true
}
