package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/subspace"
)

func schema3(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}, {Name: "m3"}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mk(t *testing.T, s *relation.Schema, id int64, vals ...float64) *relation.Tuple {
	t.Helper()
	tu, err := relation.NewTuple(s, id, []int32{0}, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tu
}

func collect(tr *Tree, q *relation.Tuple, sub subspace.Mask) []int64 {
	var out []int64
	tr.DominatorsOrBetter(q, sub, func(u *relation.Tuple) bool {
		out = append(out, u.ID)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestEmptyTree(t *testing.T) {
	s := schema3(t)
	tr := New(3)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	got := collect(tr, mk(t, s, 0, 1, 2, 3), 0b111)
	if len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestBasicQuery(t *testing.T) {
	s := schema3(t)
	tr := New(3)
	tr.Insert(mk(t, s, 0, 5, 5, 5))
	tr.Insert(mk(t, s, 1, 7, 7, 7))
	tr.Insert(mk(t, s, 2, 3, 9, 5))
	tr.Insert(mk(t, s, 3, 5, 5, 4))

	q := mk(t, s, 99, 5, 5, 5)
	// Full space, ≥ (5,5,5): ids 0 (equal) and 1.
	if got := collect(tr, q, 0b111); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("full-space query = %v, want [0 1]", got)
	}
	// Subspace {m2}: ≥5 on m2 → ids 0,1,2,3.
	if got := collect(tr, q, 0b010); len(got) != 4 {
		t.Errorf("{m2} query = %v, want all four", got)
	}
	// Subspace {m1,m3}: ≥(5,·,5) → 0, 1.
	if got := collect(tr, q, 0b101); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("{m1,m3} query = %v, want [0 1]", got)
	}
}

func TestEarlyStop(t *testing.T) {
	s := schema3(t)
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Insert(mk(t, s, int64(i), 10, 10, 10))
	}
	q := mk(t, s, 99, 1, 1, 1)
	calls := 0
	tr.DominatorsOrBetter(q, 0b111, func(u *relation.Tuple) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop visited %d tuples, want 1", calls)
	}
}

func TestRespectsOrientation(t *testing.T) {
	// Smaller-better attributes are negated in Oriented, so the one-sided
	// query transparently means "at most" on raw values.
	sch, err := relation.NewSchema("r", []relation.DimAttr{{Name: "d"}},
		[]relation.MeasureAttr{{Name: "fouls", Direction: relation.SmallerBetter}})
	if err != nil {
		t.Fatal(err)
	}
	tr := New(1)
	lo, _ := relation.NewTuple(sch, 0, []int32{0}, []float64{1})
	hi, _ := relation.NewTuple(sch, 1, []int32{0}, []float64{5})
	tr.Insert(lo)
	tr.Insert(hi)
	q, _ := relation.NewTuple(sch, 2, []int32{0}, []float64{3})
	got := collect(tr, q, 0b1)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("smaller-better query = %v, want [0] (1 foul beats 3)", got)
	}
}

// Randomised cross-check against a linear scan, over all subspaces.
func TestRandomCrossCheck(t *testing.T) {
	s := schema3(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tr := New(3)
		var all []*relation.Tuple
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			tu := mk(t, s, int64(i),
				float64(rng.Intn(10)), float64(rng.Intn(10)), float64(rng.Intn(10)))
			tr.Insert(tu)
			all = append(all, tu)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		q := mk(t, s, 999, float64(rng.Intn(10)), float64(rng.Intn(10)), float64(rng.Intn(10)))
		for sub := subspace.Mask(1); sub < 8; sub++ {
			got := collect(tr, q, sub)
			var want []int64
			for _, u := range all {
				ok := true
				for i := 0; i < 3; i++ {
					if sub&(1<<uint(i)) != 0 && u.Oriented[i] < q.Oriented[i] {
						ok = false
						break
					}
				}
				if ok {
					want = append(want, u.ID)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("trial %d sub %b: got %d results, want %d", trial, sub, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d sub %b: got %v, want %v", trial, sub, got, want)
				}
			}
		}
	}
}
