package lattice

import "repro/internal/relation"

// FindCt is Algorithm 1 of the paper: enumerate all constraints satisfied
// by t, from ⊤ = 〈*,...,*〉 to 〈t.d1,...,t.dn〉, generating each exactly
// once. The dedup trick is the paper's: from a constraint C, extend only
// the suffix of still-unbound attributes below the highest-index bound one
// (the inner while loop stops at the first bound attribute scanning from
// d_n down).
//
// It exists mainly as executable documentation and as a test oracle for the
// mask-based enumeration the real algorithms use; it returns constraints in
// the exact BFS order Alg. 1 produces.
func FindCt(t *relation.Tuple) []Constraint {
	d := len(t.Dims)
	var out []Constraint
	queue := []Mask{0} // ⊤
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		out = append(out, FromTuple(t, c))
		// i ← n; while i > 0 and C.d_i = * : bind d_i, enqueue, i--.
		for i := d - 1; i >= 0; i-- {
			bit := Mask(1) << uint(i)
			if c&bit != 0 {
				break
			}
			queue = append(queue, c|bit)
		}
	}
	return out
}

// CtMasks returns the masks of all constraints in C^t with bound(C) ≤
// maxBound (d̂ cap; maxBound < 0 means no cap), in the same generation
// order as Algorithm 1. The result depends only on d and maxBound, so
// callers usually compute it once per (schema, d̂) and reuse it.
func CtMasks(d, maxBound int) []Mask {
	if maxBound < 0 || maxBound > d {
		maxBound = d
	}
	out := make([]Mask, 0, CountMasks(d, maxBound))
	queue := []Mask{0}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		out = append(out, c)
		if PopCount(c) == maxBound {
			continue
		}
		for i := d - 1; i >= 0; i-- {
			bit := Mask(1) << uint(i)
			if c&bit != 0 {
				break
			}
			queue = append(queue, c|bit)
		}
	}
	return out
}

// BottomMasks returns the bottom elements of the d̂-truncated lattice: all
// masks with popcount = min(d, maxBound). With no cap this is the single
// ⊥(C^t) = FullMask(d); with a cap the truncated lattice has C(d, d̂)
// minimal elements and BottomUp-style traversals must seed their queue with
// all of them.
func BottomMasks(d, maxBound int) []Mask {
	if maxBound < 0 || maxBound >= d {
		return []Mask{FullMask(d)}
	}
	var out []Mask
	var rec func(start, left int, acc Mask)
	rec = func(start, left int, acc Mask) {
		if left == 0 {
			out = append(out, acc)
			return
		}
		for i := start; i <= d-left; i++ {
			rec(i+1, left-1, acc|1<<uint(i))
		}
	}
	rec(0, maxBound, 0)
	return out
}

// AncestorKeys calls fn with the store key of every ancestor-or-self of the
// constraint selected by mask in C^t (all submasks of mask, 2^bound(C) of
// them). TopDown-family stores a tuple only at maximal skyline constraints,
// so reconstructing λ_M(σ_C(R)) requires visiting exactly these cells.
func AncestorKeys(t *relation.Tuple, mask Mask, fn func(Key)) {
	SubmasksOf(mask, func(m Mask) {
		fn(KeyFromTuple(t, m))
	})
}
