package lattice

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func miniSchema(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.NewSchema("r",
		[]relation.DimAttr{{Name: "d1"}, {Name: "d2"}, {Name: "d3"}},
		[]relation.MeasureAttr{{Name: "m1"}, {Name: "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkTuple(t *testing.T, s *relation.Schema, dims ...int32) *relation.Tuple {
	t.Helper()
	tu, err := relation.NewTuple(s, 0, dims, make([]float64, s.NumMeasures()))
	if err != nil {
		t.Fatal(err)
	}
	return tu
}

func TestTopAndFromTuple(t *testing.T) {
	s := miniSchema(t)
	tu := mkTuple(t, s, 7, 8, 9)
	top := Top(3)
	if !top.IsTop() || top.Bound() != 0 {
		t.Errorf("Top(3) = %v", top)
	}
	c := FromTuple(tu, 0b101)
	want := Constraint{Vals: []int32{7, Wildcard, 9}}
	if !c.Equal(want) {
		t.Errorf("FromTuple = %v, want %v", c, want)
	}
	if c.Bound() != 2 || c.BoundMask() != 0b101 {
		t.Errorf("Bound = %d, BoundMask = %b", c.Bound(), c.BoundMask())
	}
}

func TestSatisfies(t *testing.T) {
	s := miniSchema(t)
	tu := mkTuple(t, s, 1, 2, 3)
	other := mkTuple(t, s, 1, 5, 3)
	c := FromTuple(tu, 0b101) // d1=1 ∧ d3=3
	if !c.Satisfies(tu) {
		t.Error("tuple does not satisfy its own constraint")
	}
	if !c.Satisfies(other) {
		t.Error("other should satisfy d1=1 ∧ d3=3")
	}
	c2 := FromTuple(tu, 0b010) // d2=2
	if c2.Satisfies(other) {
		t.Error("other should not satisfy d2=2")
	}
	if !Top(3).Satisfies(other) {
		t.Error("every tuple satisfies ⊤")
	}
}

func TestSubsumption(t *testing.T) {
	// Example 4 of the paper: C1=〈a,b,c〉 ◁ C2=〈a,*,c〉.
	c1 := Constraint{Vals: []int32{0, 1, 2}}
	c2 := Constraint{Vals: []int32{0, Wildcard, 2}}
	if !c1.SubsumedBy(c2) {
		t.Error("〈a,b,c〉 should be subsumed by 〈a,*,c〉")
	}
	if c2.SubsumedBy(c1) {
		t.Error("subsumption should not be symmetric")
	}
	if !c1.SubsumedByOrEqual(c1) || c1.SubsumedBy(c1) {
		t.Error("⊴ must be reflexive, ◁ irreflexive")
	}
	// Different bound values are incomparable.
	c3 := Constraint{Vals: []int32{5, Wildcard, 2}}
	if c1.SubsumedByOrEqual(c3) || c3.SubsumedByOrEqual(c1) {
		t.Error("constraints with conflicting values must be incomparable")
	}
	// Everything is subsumed by ⊤.
	if !c1.SubsumedBy(Top(3)) || !c2.SubsumedBy(Top(3)) {
		t.Error("⊤ must subsume everything")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	s := miniSchema(t)
	tu := mkTuple(t, s, 4, 0, 123456)
	for mask := Mask(0); mask < 8; mask++ {
		c := FromTuple(tu, mask)
		k := c.Key()
		if k2 := KeyFromTuple(tu, mask); k2 != k {
			t.Errorf("mask %b: KeyFromTuple = %x, Constraint.Key = %x", mask, k2, k)
		}
		back, err := ParseKey(k, 3)
		if err != nil {
			t.Fatalf("ParseKey: %v", err)
		}
		if !back.Equal(c) {
			t.Errorf("mask %b: round trip %v != %v", mask, back, c)
		}
	}
	if _, err := ParseKey("short", 3); err == nil {
		t.Error("ParseKey accepted wrong length")
	}
}

func TestKeysEqualAcrossTuples(t *testing.T) {
	s := miniSchema(t)
	a := mkTuple(t, s, 1, 2, 3)
	b := mkTuple(t, s, 1, 9, 3)
	// Constraints binding only shared attrs must collide.
	if KeyFromTuple(a, 0b101) != KeyFromTuple(b, 0b101) {
		t.Error("same bound values must give same key")
	}
	if KeyFromTuple(a, 0b111) == KeyFromTuple(b, 0b111) {
		t.Error("different bound values must give different keys")
	}
}

func TestSharedMask(t *testing.T) {
	s := miniSchema(t)
	a := mkTuple(t, s, 1, 2, 3)
	b := mkTuple(t, s, 1, 9, 3)
	if got := SharedMask(a, b); got != 0b101 {
		t.Errorf("SharedMask = %b, want 101", got)
	}
	if got := SharedMask(a, a); got != 0b111 {
		t.Errorf("SharedMask(self) = %b, want 111", got)
	}
	c := mkTuple(t, s, 7, 8, 9)
	if got := SharedMask(a, c); got != 0 {
		t.Errorf("SharedMask(disjoint) = %b, want 0 (⊥ = ⊤ case of Def. 8)", got)
	}
}

func TestParentsChildren(t *testing.T) {
	var ps []Mask
	ps = Parents(0b101, ps)
	if len(ps) != 2 {
		t.Fatalf("parents of 101: %b", ps)
	}
	seen := map[Mask]bool{}
	for _, p := range ps {
		seen[p] = true
		if bits.OnesCount32(p) != 1 || p&^Mask(0b101) != 0 {
			t.Errorf("bad parent %b", p)
		}
	}
	if !seen[0b100] || !seen[0b001] {
		t.Errorf("parents = %b, want {100, 001}", ps)
	}

	var cs []Mask
	cs = Children(0b001, 3, cs)
	if len(cs) != 2 {
		t.Fatalf("children of 001 in d=3: %b", cs)
	}
	seen = map[Mask]bool{}
	for _, c := range cs {
		seen[c] = true
	}
	if !seen[0b011] || !seen[0b101] {
		t.Errorf("children = %b, want {011, 101}", cs)
	}
	if got := Parents(0, nil); len(got) != 0 {
		t.Errorf("⊤ has no parents, got %b", got)
	}
	if got := Children(0b111, 3, nil); len(got) != 0 {
		t.Errorf("⊥ has no children, got %b", got)
	}
}

func TestSubmasksOf(t *testing.T) {
	var got []Mask
	SubmasksOf(0b101, func(m Mask) { got = append(got, m) })
	want := map[Mask]bool{0b101: true, 0b100: true, 0b001: true, 0: true}
	if len(got) != len(want) {
		t.Fatalf("SubmasksOf(101) = %b, want 4 masks", got)
	}
	for _, m := range got {
		if !want[m] {
			t.Errorf("unexpected submask %b", m)
		}
	}
	got = nil
	SubmasksOf(0, func(m Mask) { got = append(got, m) })
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("SubmasksOf(0) = %v", got)
	}
}

func TestIsSubmaskOrientation(t *testing.T) {
	// constraint(m2) ⊴ constraint(m1) within C^t iff m1 ⊆ m2.
	s := miniSchema(t)
	tu := mkTuple(t, s, 1, 2, 3)
	for m1 := Mask(0); m1 < 8; m1++ {
		for m2 := Mask(0); m2 < 8; m2++ {
			c1, c2 := FromTuple(tu, m1), FromTuple(tu, m2)
			if got, want := c2.SubsumedByOrEqual(c1), IsSubmask(m1, m2); got != want {
				t.Errorf("m1=%b m2=%b: SubsumedByOrEqual=%v IsSubmask=%v", m1, m2, got, want)
			}
		}
	}
}

func TestMasksByLevelAndCount(t *testing.T) {
	levels := MasksByLevel(4, 2)
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3 (bound 0..2)", len(levels))
	}
	wantSizes := []int{1, 4, 6}
	total := 0
	for k, lv := range levels {
		if len(lv) != wantSizes[k] {
			t.Errorf("level %d has %d masks, want %d", k, len(lv), wantSizes[k])
		}
		for _, m := range lv {
			if PopCount(m) != k {
				t.Errorf("mask %b in level %d", m, k)
			}
		}
		total += len(lv)
	}
	if got := CountMasks(4, 2); got != total {
		t.Errorf("CountMasks(4,2) = %d, want %d", got, total)
	}
	if got := CountMasks(5, -1); got != 32 {
		t.Errorf("CountMasks(5,-1) = %d, want 32", got)
	}
	if got := CountMasks(5, 7); got != 32 {
		t.Errorf("CountMasks(5,7) = %d, want 32", got)
	}
}

// Property: subsumption defined on constraint vectors coincides with mask
// inclusion for random pairs from the same tuple, and SharedMask produces a
// lattice bottom that both tuples satisfy.
func TestSharedMaskProperty(t *testing.T) {
	s := miniSchema(t)
	f := func(a0, a1, a2, b0, b1, b2 uint8) bool {
		a := mkTupleQuick(s, int32(a0%4), int32(a1%4), int32(a2%4))
		b := mkTupleQuick(s, int32(b0%4), int32(b1%4), int32(b2%4))
		shared := SharedMask(a, b)
		bottom := FromTuple(a, shared)
		if !bottom.Satisfies(a) || !bottom.Satisfies(b) {
			return false
		}
		// Any mask binding an attribute outside shared is not satisfied by
		// both (unless values coincide, which shared already captures).
		for m := Mask(0); m < 8; m++ {
			c := FromTuple(a, m)
			both := c.Satisfies(a) && c.Satisfies(b)
			if both != IsSubmask(m, shared) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkTupleQuick(s *relation.Schema, dims ...int32) *relation.Tuple {
	tu, err := relation.NewTuple(s, 0, dims, make([]float64, s.NumMeasures()))
	if err != nil {
		panic(err)
	}
	return tu
}

func TestConstraintFormat(t *testing.T) {
	s := miniSchema(t)
	tb := relation.NewTable(s)
	tu, err := tb.Append([]string{"a1", "b1", "c1"}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c := FromTuple(tu, 0b011)
	got := c.Format(s, tb.Dict())
	if got != "d1=a1 ∧ d2=b1" {
		t.Errorf("Format = %q", got)
	}
	if got := Top(3).Format(s, tb.Dict()); got != "⊤" {
		t.Errorf("Format(⊤) = %q", got)
	}
}
