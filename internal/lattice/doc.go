// Package lattice implements the constraint lattice of Sultana et al.,
// ICDE 2014 (Section IV): conjunctive constraints over dimension
// attributes, their subsumption partial order, the per-tuple lattice C^t of
// tuple-satisfied constraints, and lattice intersections C^{t,t'}.
//
// Two representations coexist:
//
//   - Constraint: a concrete value vector with wildcards, used at API
//     boundaries, in the µ(C,M) store keys, and for display.
//   - Mask: within one tuple's lattice C^t a constraint is fully determined
//     by WHICH attributes are bound (always to t's values), so the hot
//     per-tuple algorithms manipulate uint32 bitmasks instead: bit i set ⇔
//     d_i bound. ⊤ = 0, ⊥(C^t) = all-ones. Parents clear one bit, children
//     set one bit, and the intersection lattice C^{t,t'} is exactly the set
//     of submasks of the "shared mask" (attributes where t and t' agree).
//
// A d-dimensional relation induces a lattice of 2^d constraint templates
// (which attributes are bound); enumeration order and the paper's
// Algorithm 1 dedup discipline live in enumerate.go, and the d̂ cap
// (MaxBound) truncates the lattice from above. Keys (Key) give every
// concrete constraint a compact byte-string identity used by the µ store.
package lattice
