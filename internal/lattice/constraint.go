package lattice

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/relation"
)

// Wildcard is the dimension-value code meaning "unbound" (the paper's *).
const Wildcard int32 = -1

// Constraint is a conjunctive constraint 〈v1, ..., vn〉 over the dimension
// space: Vals[i] is a dictionary code, or Wildcard when d_i is unbound.
// The zero-length Constraint is invalid; use Top(d) for ⊤.
type Constraint struct {
	Vals []int32
}

// Top returns the most general constraint ⊤ = 〈*, ..., *〉 over d dims.
func Top(d int) Constraint {
	vals := make([]int32, d)
	for i := range vals {
		vals[i] = Wildcard
	}
	return Constraint{Vals: vals}
}

// FromTuple returns the constraint that binds exactly the attributes in
// mask to t's dimension values (a member of C^t).
func FromTuple(t *relation.Tuple, mask Mask) Constraint {
	vals := make([]int32, len(t.Dims))
	for i := range vals {
		if mask&(1<<uint(i)) != 0 {
			vals[i] = t.Dims[i]
		} else {
			vals[i] = Wildcard
		}
	}
	return Constraint{Vals: vals}
}

// Bound returns the number of bound attributes, bound(C).
func (c Constraint) Bound() int {
	n := 0
	for _, v := range c.Vals {
		if v != Wildcard {
			n++
		}
	}
	return n
}

// BoundMask returns the bitmask of bound attributes.
func (c Constraint) BoundMask() Mask {
	var m Mask
	for i, v := range c.Vals {
		if v != Wildcard {
			m |= 1 << uint(i)
		}
	}
	return m
}

// IsTop reports whether c is ⊤ (no bound attributes).
func (c Constraint) IsTop() bool { return c.Bound() == 0 }

// Satisfies reports whether tuple t satisfies c (Def. 4): every bound
// attribute of c equals t's value.
func (c Constraint) Satisfies(t *relation.Tuple) bool {
	for i, v := range c.Vals {
		if v != Wildcard && v != t.Dims[i] {
			return false
		}
	}
	return true
}

// SubsumedByOrEqual reports c ⊴ other (Def. 5): other's bound attributes
// are a subset of c's with equal values.
func (c Constraint) SubsumedByOrEqual(other Constraint) bool {
	if len(c.Vals) != len(other.Vals) {
		return false
	}
	for i, ov := range other.Vals {
		if ov != Wildcard && ov != c.Vals[i] {
			return false
		}
	}
	return true
}

// SubsumedBy reports c ◁ other: c ⊴ other and c ≠ other.
func (c Constraint) SubsumedBy(other Constraint) bool {
	return c.SubsumedByOrEqual(other) && !c.Equal(other)
}

// Equal reports structural equality.
func (c Constraint) Equal(other Constraint) bool {
	if len(c.Vals) != len(other.Vals) {
		return false
	}
	for i, v := range c.Vals {
		if v != other.Vals[i] {
			return false
		}
	}
	return true
}

// Key returns the canonical store key of the constraint: the little-endian
// concatenation of uint32(Vals[i]) (Wildcard encodes as 0xFFFFFFFF).
// Constraints from different tuples that bind the same values produce equal
// keys, which is what makes the global µ(C,M) store shareable.
func (c Constraint) Key() Key {
	buf := make([]byte, 4*len(c.Vals))
	for i, v := range c.Vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return Key(buf)
}

// Key is the canonical map key for a constraint. It is a plain string of
// bytes; see Constraint.Key.
type Key string

// ParseKey decodes a Key back into a Constraint over d dimensions.
func ParseKey(k Key, d int) (Constraint, error) {
	if len(k) != 4*d {
		return Constraint{}, fmt.Errorf("lattice: key has %d bytes, want %d for d=%d", len(k), 4*d, d)
	}
	vals := make([]int32, d)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32([]byte(k[4*i : 4*i+4])))
	}
	return Constraint{Vals: vals}, nil
}

// KeyFromTuple builds the store key for the member of C^t selected by mask
// without materialising a Constraint. It must stay byte-identical to
// FromTuple(t, mask).Key().
func KeyFromTuple(t *relation.Tuple, mask Mask) Key {
	return Key(AppendKeyFromTuple(make([]byte, 0, 4*len(t.Dims)), t, mask))
}

// AppendKeyFromTuple appends the key bytes of the C^t member selected by
// mask to dst and returns the extended slice. With a caller-provided stack
// scratch it derives a key with zero heap allocation — the store interner's
// fast path. The byte layout is identical to Constraint.Key.
func AppendKeyFromTuple(dst []byte, t *relation.Tuple, mask Mask) []byte {
	for i := range t.Dims {
		v := Wildcard
		if mask&(1<<uint(i)) != 0 {
			v = t.Dims[i]
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// Format renders the constraint using decoded dimension values, in the
// paper's style: "team=Celtics ∧ opp_team=Nets", or "⊤" when unbound.
func (c Constraint) Format(s *relation.Schema, dict *relation.Dict) string {
	var parts []string
	for i, v := range c.Vals {
		if v == Wildcard {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s", s.Dim(i).Name, dict.Decode(i, v)))
	}
	if len(parts) == 0 {
		return "⊤"
	}
	return strings.Join(parts, " ∧ ")
}

// Mask identifies a member of a per-tuple lattice C^t: bit i set means
// attribute d_i is bound (to the tuple's value).
type Mask = uint32

// FullMask returns ⊥(C^t) for d dimensions: all attributes bound.
func FullMask(d int) Mask { return (1 << uint(d)) - 1 }

// PopCount returns the number of bound attributes of mask, bound(C).
func PopCount(m Mask) int { return bits.OnesCount32(m) }

// SharedMask returns the bitmask of dimension attributes on which t and u
// take equal values. The intersection lattice C^{t,u} is exactly the set of
// submasks of SharedMask(t, u), whose bottom ⊥(C^{t,u}) is the shared mask
// itself (Def. 8).
func SharedMask(t, u *relation.Tuple) Mask {
	var m Mask
	for i := range t.Dims {
		if t.Dims[i] == u.Dims[i] {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Parents appends to dst the parents of mask within C^t over d dimensions:
// each parent unbinds exactly one bound attribute. |parents| = popcount.
func Parents(mask Mask, dst []Mask) []Mask {
	for m := mask; m != 0; {
		bit := m & -m
		dst = append(dst, mask&^bit)
		m &^= bit
	}
	return dst
}

// Children appends to dst the children of mask within C^t over d
// dimensions: each child binds exactly one more attribute.
// |children| = d - popcount.
func Children(mask Mask, d int, dst []Mask) []Mask {
	for unbound := FullMask(d) &^ mask; unbound != 0; {
		bit := unbound & -unbound
		dst = append(dst, mask|bit)
		unbound &^= bit
	}
	return dst
}

// IsSubmask reports a ⊆ b as attribute sets, i.e. whether the constraint
// with mask b (within some C^t) is subsumed-by-or-equal the one with mask
// a... NOTE the order: within C^t, constraint(m1) ⊴ constraint(m2) iff
// m2 ⊆ m1 (binding MORE attributes makes a constraint MORE specific).
func IsSubmask(a, b Mask) bool { return a&^b == 0 }

// SubmasksOf calls fn for every submask of m, including m itself and 0.
// This enumerates the intersection lattice C^{t,t'} when m is the shared
// mask. The visit order is decreasing unsigned value.
func SubmasksOf(m Mask, fn func(Mask)) {
	s := m
	for {
		fn(s)
		if s == 0 {
			return
		}
		s = (s - 1) & m
	}
}

// MasksByLevel returns all masks over d dimensions with popcount ≤ maxBound,
// grouped by popcount level: result[k] holds all masks with k bound
// attributes. It is used for deterministic level-order traversals and for
// test oracles. maxBound < 0 means no cap.
func MasksByLevel(d, maxBound int) [][]Mask {
	if maxBound < 0 || maxBound > d {
		maxBound = d
	}
	levels := make([][]Mask, maxBound+1)
	for m := Mask(0); m <= FullMask(d); m++ {
		k := PopCount(m)
		if k <= maxBound {
			levels[k] = append(levels[k], m)
		}
		if d == 0 {
			break
		}
	}
	return levels
}

// CountMasks returns |{m : popcount(m) ≤ maxBound}| over d dimensions,
// i.e. the size of the (possibly d̂-truncated) per-tuple lattice.
func CountMasks(d, maxBound int) int {
	if maxBound < 0 || maxBound >= d {
		return 1 << uint(d)
	}
	total := 0
	choose := 1
	for k := 0; k <= maxBound; k++ {
		total += choose
		choose = choose * (d - k) / (k + 1)
	}
	return total
}
