package lattice

import (
	"testing"

	"repro/internal/relation"
)

func TestFindCtEnumeratesAllOnce(t *testing.T) {
	s := miniSchema(t)
	tu := mkTuple(t, s, 1, 2, 3)
	cs := FindCt(tu)
	if len(cs) != 8 {
		t.Fatalf("FindCt produced %d constraints, want 2^3 = 8", len(cs))
	}
	seen := map[Key]bool{}
	for _, c := range cs {
		k := c.Key()
		if seen[k] {
			t.Errorf("constraint %v generated twice", c)
		}
		seen[k] = true
		if !c.Satisfies(tu) {
			t.Errorf("constraint %v not satisfied by its tuple", c)
		}
	}
	// Alg. 1 starts at ⊤ and ends at the most specific constraint.
	if !cs[0].IsTop() {
		t.Errorf("first constraint = %v, want ⊤", cs[0])
	}
	if cs[len(cs)-1].Bound() != 3 {
		t.Errorf("last constraint = %v, want fully bound", cs[len(cs)-1])
	}
}

func TestCtMasksMatchesFindCt(t *testing.T) {
	s := miniSchema(t)
	tu := mkTuple(t, s, 5, 6, 7)
	cs := FindCt(tu)
	masks := CtMasks(3, -1)
	if len(cs) != len(masks) {
		t.Fatalf("lengths differ: %d vs %d", len(cs), len(masks))
	}
	for i, m := range masks {
		if !FromTuple(tu, m).Equal(cs[i]) {
			t.Errorf("position %d: mask %b gives %v, FindCt gives %v", i, m, FromTuple(tu, m), cs[i])
		}
	}
}

func TestCtMasksCap(t *testing.T) {
	for d := 1; d <= 6; d++ {
		for cap := 0; cap <= d; cap++ {
			masks := CtMasks(d, cap)
			if len(masks) != CountMasks(d, cap) {
				t.Errorf("d=%d cap=%d: %d masks, want %d", d, cap, len(masks), CountMasks(d, cap))
			}
			seen := map[Mask]bool{}
			for _, m := range masks {
				if PopCount(m) > cap {
					t.Errorf("d=%d cap=%d: mask %b exceeds cap", d, cap, m)
				}
				if seen[m] {
					t.Errorf("d=%d cap=%d: duplicate mask %b", d, cap, m)
				}
				seen[m] = true
			}
		}
	}
}

func TestCtMasksLevelOrder(t *testing.T) {
	// BFS property: bound counts never decrease along the sequence, so
	// parents always precede children.
	masks := CtMasks(5, -1)
	for i := 1; i < len(masks); i++ {
		if PopCount(masks[i]) < PopCount(masks[i-1]) {
			t.Fatalf("masks not in level order at %d: %b after %b", i, masks[i], masks[i-1])
		}
	}
}

func TestBottomMasks(t *testing.T) {
	if got := BottomMasks(4, -1); len(got) != 1 || got[0] != 0b1111 {
		t.Errorf("BottomMasks(4, no cap) = %b", got)
	}
	if got := BottomMasks(4, 4); len(got) != 1 || got[0] != 0b1111 {
		t.Errorf("BottomMasks(4, 4) = %b", got)
	}
	got := BottomMasks(4, 2)
	if len(got) != 6 { // C(4,2)
		t.Fatalf("BottomMasks(4,2) = %b, want 6 masks", got)
	}
	seen := map[Mask]bool{}
	for _, m := range got {
		if PopCount(m) != 2 {
			t.Errorf("bottom mask %b has popcount %d", m, PopCount(m))
		}
		if seen[m] {
			t.Errorf("duplicate bottom %b", m)
		}
		seen[m] = true
	}
	if got := BottomMasks(3, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("BottomMasks(3,0) = %b, want just ⊤", got)
	}
}

func TestAncestorKeys(t *testing.T) {
	s := miniSchema(t)
	tu := mkTuple(t, s, 1, 2, 3)
	var keys []Key
	AncestorKeys(tu, 0b011, func(k Key) { keys = append(keys, k) })
	if len(keys) != 4 {
		t.Fatalf("AncestorKeys(011) returned %d keys, want 4", len(keys))
	}
	want := map[Key]bool{
		KeyFromTuple(tu, 0b011): true,
		KeyFromTuple(tu, 0b001): true,
		KeyFromTuple(tu, 0b010): true,
		KeyFromTuple(tu, 0b000): true,
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected ancestor key %x", k)
		}
	}
}

func TestFindCtExample(t *testing.T) {
	// Running-example check against the paper's Fig. 1: lattice of t5 =
	// 〈a1, b1, c1〉 has 8 constraints; verify the children relationships.
	s := miniSchema(t)
	tb := relation.NewTable(s)
	t5, err := tb.Append([]string{"a1", "b1", "c1"}, []float64{11, 15})
	if err != nil {
		t.Fatal(err)
	}
	cs := FindCt(t5)
	byBound := map[int]int{}
	for _, c := range cs {
		byBound[c.Bound()]++
	}
	if byBound[0] != 1 || byBound[1] != 3 || byBound[2] != 3 || byBound[3] != 1 {
		t.Errorf("lattice level sizes = %v, want 1/3/3/1", byBound)
	}
}
