package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func writable(t *testing.T, fs FS, dir, name string) File {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return f
}

func TestFaultPlanParse(t *testing.T) {
	good := []string{
		"",
		"fsync:nth=1",
		"fsync:from=3",
		"write:enospc-after=0",
		"write:short-at=2",
		"fsync:from=2;clear-after=500ms",
		" fsync:nth=1 ; write:enospc-after=4096 ",
	}
	for _, s := range good {
		if err := ParsePlan(s); err != nil {
			t.Errorf("ParsePlan(%q) = %v, want nil", s, err)
		}
	}
	bad := []string{
		"fsync:nth=0",
		"fsync:nth=x",
		"fsync",
		"write:enospc-after=-1",
		"clear-after=0",
		"clear-after=fast",
		"disk:on-fire=true",
	}
	for _, s := range bad {
		if err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) = nil, want error", s)
		}
	}
}

func TestFaultFsyncNthIsOneShot(t *testing.T) {
	fs, err := NewWithPlan(OS, "fsync:nth=2")
	if err != nil {
		t.Fatal(err)
	}
	f := writable(t, fs, t.TempDir(), "f")
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 after one-shot: %v", err)
	}
	st := fs.Stats()
	if st.Syncs != 3 || st.InjectedSyncs != 1 {
		t.Fatalf("stats = %+v, want 3 syncs / 1 injected", st)
	}
}

func TestFaultFsyncFromIsSticky(t *testing.T) {
	fs, err := NewWithPlan(OS, "fsync:from=2")
	if err != nil {
		t.Fatal(err)
	}
	f := writable(t, fs, t.TempDir(), "f")
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d = %v, want sticky ErrInjected", i+2, err)
		}
	}
	fs.Clear()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Clear: %v", err)
	}
}

func TestFaultEnospcTearsTheCrossingWrite(t *testing.T) {
	fs, err := NewWithPlan(OS, "write:enospc-after=10")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	f := writable(t, fs, dir, "f")
	if n, err := f.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("write 1 = (%d, %v), want (6, nil)", n, err)
	}
	n, err := f.Write(make([]byte, 8))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("crossing write err = %v, want ErrInjected wrapping ENOSPC", err)
	}
	if n != 4 {
		t.Fatalf("crossing write persisted %d bytes, want the 4-byte prefix", n)
	}
	f.Close()
	// The torn prefix must be real on-disk bytes.
	b, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 10 {
		t.Fatalf("on-disk size = %d, want 10", len(b))
	}
}

func TestFaultShortWrite(t *testing.T) {
	fs, err := NewWithPlan(OS, "write:short-at=1")
	if err != nil {
		t.Fatal(err)
	}
	f := writable(t, fs, t.TempDir(), "f")
	defer f.Close()
	n, err := f.Write(make([]byte, 8))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write err = %v, want ErrInjected wrapping ErrShortWrite", err)
	}
	if n != 4 {
		t.Fatalf("short write persisted %d bytes, want 4", n)
	}
	if n, err := f.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("next write = (%d, %v), want (8, nil)", n, err)
	}
}

func TestFaultReadOnlyOpensAreExempt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := NewWithPlan(OS, "fsync:from=1;write:enospc-after=0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("read-only sync hit the plan: %v", err)
	}
	b := make([]byte, 5)
	if _, err := io.ReadFull(f, b); err != nil {
		t.Fatalf("read: %v", err)
	}
}

func TestFaultClearAfterHeals(t *testing.T) {
	fs, err := NewWithPlan(OS, "fsync:from=1;clear-after=50ms")
	if err != nil {
		t.Fatal(err)
	}
	f := writable(t, fs, t.TempDir(), "f")
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1 = %v, want ErrInjected", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := f.Sync(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("plan did not clear itself within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := fs.Stats(); st.Plan != "" {
		t.Fatalf("expired plan still reported active: %+v", st)
	}
}

func TestFaultProgramResetsCounters(t *testing.T) {
	fs := New(OS)
	f := writable(t, fs, t.TempDir(), "f")
	defer f.Close()
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Program("fsync:nth=1"); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.Syncs != 0 || st.Writes != 0 || st.BytesWritten != 0 {
		t.Fatalf("Program did not reset counters: %+v", st)
	}
	// nth counts from the Program call, not process start.
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first post-Program sync = %v, want ErrInjected", err)
	}
}
