// Package faultfs is the injectable I/O seam under internal/persist.
//
// The write-ahead log opens, writes, and fsyncs its segments through the
// small FS/File interfaces below instead of calling the os package
// directly. In production the seam is the zero-cost OS passthrough; in
// fault tests it is a *Faulty, which injects programmable failures —
// fail the Nth fsync (one-shot or sticky), report ENOSPC after K bytes,
// tear a write in half — into an otherwise real filesystem. Because the
// plan is a string (see ParsePlan), the real situfactd binary can arm it
// from the SITUFACTD_FAULT_PLAN environment hook, so crash-style tests
// exercise child processes, not just in-process pools.
//
// Faults fire only on files opened writable through OpenFile: the log's
// segment files. Read-only opens (segment scans, directory fsyncs) always
// pass through, so a fault plan degrades the write path without blinding
// recovery or replication reads.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// File is the slice of *os.File the WAL needs. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS is the slice of the os package the WAL needs.
type FS interface {
	// OpenFile opens a file with the given flags; files opened writable
	// through it are subject to injected faults.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only; never subject to faults.
	Open(name string) (File, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
}

// OS is the passthrough FS: every call maps 1:1 onto the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err // nil interface, not a typed-nil *os.File
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }

// ErrInjected marks every fault this package injects; errors.Is(err,
// ErrInjected) distinguishes a drill from a real device failure.
var ErrInjected = errors.New("injected fault")

// plan is a parsed fault plan. Counters are relative to the moment the
// plan was programmed, not process start.
type plan struct {
	syncNth     uint64        // fail exactly the Nth fsync (one-shot)
	syncFrom    uint64        // fail every fsync from the Nth on (sticky)
	enospcAfter int64         // ENOSPC once cumulative written bytes would exceed this; -1 = off
	shortAt     uint64        // the Nth write persists half its bytes (one-shot)
	clearAfter  time.Duration // auto-clear the plan this long after its first injected fault
	source      string        // the string the plan was parsed from
}

func emptyPlan() plan { return plan{enospcAfter: -1} }

func (p plan) active() bool {
	return p.syncNth > 0 || p.syncFrom > 0 || p.enospcAfter >= 0 || p.shortAt > 0
}

// ParsePlan validates a fault-plan string without installing it anywhere.
// Grammar: semicolon-separated clauses, each of
//
//	fsync:nth=N          fail exactly the Nth fsync after programming (one-shot)
//	fsync:from=N         fail every fsync from the Nth on (sticky)
//	write:enospc-after=K writes fail with ENOSPC once K cumulative bytes
//	                     have been written (the crossing write persists a
//	                     partial prefix — a genuine torn frame)
//	write:short-at=N     the Nth write persists only half its bytes
//	clear-after=D        auto-clear the whole plan D after its first
//	                     injected fault (Go duration, e.g. 500ms)
//
// For example "fsync:from=2;clear-after=1s" makes every fsync after the
// first fail, healing itself one second after the first failure.
func ParsePlan(s string) error {
	_, err := parsePlan(s)
	return err
}

func parsePlan(s string) (plan, error) {
	p := emptyPlan()
	p.source = s
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return p, fmt.Errorf("faultfs: clause %q: want key=value", clause)
		}
		switch key {
		case "fsync:nth", "fsync:from", "write:short-at":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return p, fmt.Errorf("faultfs: clause %q: want a positive integer", clause)
			}
			switch key {
			case "fsync:nth":
				p.syncNth = n
			case "fsync:from":
				p.syncFrom = n
			case "write:short-at":
				p.shortAt = n
			}
		case "write:enospc-after":
			k, err := strconv.ParseInt(val, 10, 64)
			if err != nil || k < 0 {
				return p, fmt.Errorf("faultfs: clause %q: want a byte count >= 0", clause)
			}
			p.enospcAfter = k
		case "clear-after":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return p, fmt.Errorf("faultfs: clause %q: want a positive duration", clause)
			}
			p.clearAfter = d
		default:
			return p, fmt.Errorf("faultfs: unknown clause %q", clause)
		}
	}
	return p, nil
}

// Stats is a point-in-time snapshot of a Faulty's counters.
type Stats struct {
	Plan           string // the active plan's source string ("" when clear)
	Syncs          uint64 // fsyncs attempted on writable files since programming
	Writes         uint64 // writes attempted on writable files since programming
	BytesWritten   int64  // bytes successfully persisted since programming
	InjectedSyncs  uint64 // fsyncs that failed by injection
	InjectedWrites uint64 // writes that failed by injection
}

// Faulty wraps a base FS and injects faults per the programmed plan.
// Safe for concurrent use; the zero plan injects nothing.
type Faulty struct {
	base FS

	mu      sync.Mutex
	plan    plan
	syncs   uint64 // plan-relative counters
	writes  uint64
	bytes   int64
	injSync uint64
	injWr   uint64
	firedAt time.Time // first injection under the current plan (arms clear-after)
}

// New returns a Faulty over base with no plan programmed.
func New(base FS) *Faulty {
	return &Faulty{base: base, plan: emptyPlan()}
}

// NewWithPlan returns a Faulty with the plan already programmed.
func NewWithPlan(base FS, planStr string) (*Faulty, error) {
	f := New(base)
	if err := f.Program(planStr); err != nil {
		return nil, err
	}
	return f, nil
}

// Program parses and installs a plan, resetting the plan-relative
// counters. An empty string is equivalent to Clear.
func (s *Faulty) Program(planStr string) error {
	p, err := parsePlan(planStr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = p
	s.syncs, s.writes, s.bytes = 0, 0, 0
	s.injSync, s.injWr = 0, 0
	s.firedAt = time.Time{}
	return nil
}

// Clear drops the plan; subsequent I/O passes through untouched.
func (s *Faulty) Clear() {
	s.mu.Lock()
	s.plan = emptyPlan()
	s.plan.source = ""
	s.firedAt = time.Time{}
	s.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (s *Faulty) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeExpire()
	st := Stats{
		Syncs:          s.syncs,
		Writes:         s.writes,
		BytesWritten:   s.bytes,
		InjectedSyncs:  s.injSync,
		InjectedWrites: s.injWr,
	}
	if s.plan.active() || s.plan.clearAfter > 0 {
		st.Plan = s.plan.source
	}
	return st
}

// arm records the first injection so clear-after can count from it.
// Caller holds mu.
func (s *Faulty) arm() {
	if s.plan.clearAfter > 0 && s.firedAt.IsZero() {
		s.firedAt = time.Now()
	}
}

// maybeExpire clears the plan once clear-after has elapsed since the
// first injection. Caller holds mu.
func (s *Faulty) maybeExpire() {
	if s.plan.clearAfter > 0 && !s.firedAt.IsZero() && time.Since(s.firedAt) >= s.plan.clearAfter {
		s.plan = emptyPlan()
		s.firedAt = time.Time{}
	}
}

// beforeSync decides the fate of one fsync on a writable file.
func (s *Faulty) beforeSync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeExpire()
	s.syncs++
	if s.plan.syncNth > 0 && s.syncs == s.plan.syncNth {
		s.plan.syncNth = 0 // one-shot
		s.arm()
		s.injSync++
		return fmt.Errorf("faultfs: fsync %d failed: %w", s.syncs, ErrInjected)
	}
	if s.plan.syncFrom > 0 && s.syncs >= s.plan.syncFrom {
		s.arm()
		s.injSync++
		return fmt.Errorf("faultfs: fsync %d failed (sticky from %d): %w", s.syncs, s.plan.syncFrom, ErrInjected)
	}
	return nil
}

// beforeWrite decides the fate of one n-byte write on a writable file.
// allow is how many bytes the caller should actually write; when err is
// non-nil the caller writes the allow-byte prefix and reports err.
func (s *Faulty) beforeWrite(n int) (allow int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeExpire()
	s.writes++
	if s.plan.shortAt > 0 && s.writes == s.plan.shortAt {
		s.plan.shortAt = 0 // one-shot
		s.arm()
		s.injWr++
		allow = n / 2
		return allow, fmt.Errorf("faultfs: write %d torn (%d of %d bytes): %w (%w)",
			s.writes, allow, n, io.ErrShortWrite, ErrInjected)
	}
	if s.plan.enospcAfter >= 0 && s.bytes+int64(n) > s.plan.enospcAfter {
		allow = int(s.plan.enospcAfter - s.bytes)
		if allow < 0 {
			allow = 0
		}
		s.arm()
		s.injWr++
		return allow, fmt.Errorf("faultfs: no space after %d bytes: %w (%w)",
			s.plan.enospcAfter, syscall.ENOSPC, ErrInjected)
	}
	return n, nil
}

func (s *Faulty) wrote(n int) {
	s.mu.Lock()
	s.bytes += int64(n)
	s.mu.Unlock()
}

func (s *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := s.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&(os.O_WRONLY|os.O_RDWR) == 0 {
		return f, nil // opened read-only: exempt from faults
	}
	return &faultyFile{File: f, fs: s}, nil
}

func (s *Faulty) Open(name string) (File, error)               { return s.base.Open(name) }
func (s *Faulty) ReadDir(name string) ([]os.DirEntry, error)   { return s.base.ReadDir(name) }
func (s *Faulty) MkdirAll(path string, perm os.FileMode) error { return s.base.MkdirAll(path, perm) }
func (s *Faulty) Remove(name string) error                     { return s.base.Remove(name) }
func (s *Faulty) Rename(oldpath, newpath string) error         { return s.base.Rename(oldpath, newpath) }

// faultyFile threads a writable file's writes and fsyncs through the
// owning Faulty's plan.
type faultyFile struct {
	File
	fs *Faulty
}

func (f *faultyFile) Write(p []byte) (int, error) {
	allow, injected := f.fs.beforeWrite(len(p))
	if injected == nil {
		n, err := f.File.Write(p)
		f.fs.wrote(n)
		return n, err
	}
	n := 0
	if allow > 0 {
		// Persist the permitted prefix for real: the torn frame must be
		// on disk for recovery to trip over, exactly like a device that
		// ran dry mid-write.
		var err error
		n, err = f.File.Write(p[:allow])
		f.fs.wrote(n)
		if err != nil {
			return n, err
		}
	}
	return n, injected
}

func (f *faultyFile) Sync() error {
	if err := f.fs.beforeSync(); err != nil {
		return err
	}
	return f.File.Sync()
}
