// Package csc implements a compressed skycube (Xia & Zhang, SIGMOD 2006)
// sufficient for the paper's C-CSC comparator: each tuple is stored only in
// its MINIMUM SUBSPACES — the minimal (by set inclusion) measure subspaces
// in which it is a skyline tuple. The structure supports incremental
// insertion and subspace skyline queries.
//
// The adaptation used as a baseline in Sultana et al. (§II, §VI) maintains
// one CSC per context (constraint); see the core package's CCSC algorithm.
//
// Key facts the implementation relies on (and tests verify):
//
//  1. If t ∈ SKY(M) then some minimum subspace of t is ⊆ M, so the
//     candidate set ⋃_{M' ⊆ M} cell(M') contains every skyline tuple of M.
//  2. If t ∉ SKY(M), some tuple in the candidate set dominates t in M
//     (chase dominators up to a skyline tuple; transitivity).
//  3. On insertion of t, a stored tuple u's skyline memberships can only
//     shrink, and only in subspaces where t dominates u. The set of
//     minimum subspaces of u changes only if t dominates u in one of them
//     (a new minimal element can appear only when a whole chain below it —
//     including a stored minimum — is knocked out), so scanning the cells
//     finds every affected tuple. NOTE: with ties, skyline membership is
//     NOT upward-monotone (u can be skyline in {m1} yet dominated in
//     {m1,m2}), so a victim's old skyline set must be recomputed from the
//     candidate sets, not inferred as the up-closure of its old minima.
package csc

import (
	"repro/internal/relation"
	"repro/internal/subspace"
)

// CSC is a compressed skycube over one set of tuples (one context).
type CSC struct {
	m       int // number of measure attributes
	maxSize int // m̂ cap on subspace size (-1: no cap)
	subs    []subspace.Mask
	cells   map[subspace.Mask][]*relation.Tuple

	// stored counts tuple entries across cells (memory proxy, Fig 10b).
	stored int64
	// comparisons counts pairwise dominance tests (Fig 11a bookkeeping).
	comparisons int64
}

// New creates an empty CSC over m measure attributes, considering only
// subspaces with at most maxSize attributes (maxSize < 0: all).
func New(m, maxSize int) *CSC {
	return &CSC{
		m:       m,
		maxSize: maxSize,
		subs:    subspace.Enumerate(m, maxSize),
		cells:   make(map[subspace.Mask][]*relation.Tuple),
	}
}

// StoredTuples returns the total number of tuple entries across cells.
func (c *CSC) StoredTuples() int64 { return c.stored }

// Comparisons returns the cumulative pairwise dominance-test count.
func (c *CSC) Comparisons() int64 { return c.comparisons }

// candidates collects the distinct tuples stored in every cell M' ⊆ M.
func (c *CSC) candidates(m subspace.Mask, scratch map[int64]bool) []*relation.Tuple {
	var out []*relation.Tuple
	for cellMask, ts := range c.cells {
		if cellMask&^m != 0 {
			continue // not a subset of M
		}
		for _, u := range ts {
			if !scratch[u.ID] {
				scratch[u.ID] = true
				out = append(out, u)
			}
		}
	}
	for _, u := range out {
		delete(scratch, u.ID)
	}
	return out
}

// Query returns the skyline of the indexed tuple set in subspace m,
// computed over the candidate union of all cells M' ⊆ m.
func (c *CSC) Query(m subspace.Mask) []*relation.Tuple {
	cand := c.candidates(m, map[int64]bool{})
	var sky []*relation.Tuple
	for _, t := range cand {
		dominated := false
		for _, u := range cand {
			c.comparisons++
			if u != t && subspace.Dominates(u, t, m) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, t)
		}
	}
	return sky
}

// Insert adds t, repairs every affected tuple's minimum subspaces, and
// returns the set of subspaces (≤ maxSize attributes) in which t is now a
// skyline tuple. The return value is what the C-CSC adaptation reports as
// t's skyline memberships in this context; computing it requires the
// per-subspace queries the paper calls "an overkill" — that cost profile
// is intentional.
func (c *CSC) Insert(t *relation.Tuple) []subspace.Mask {
	// 1. Decide t's skyline subspaces against the pre-insertion state.
	scratch := map[int64]bool{}
	skySubs := make([]subspace.Mask, 0, len(c.subs))
	for _, m := range c.subs {
		cand := c.candidates(m, scratch)
		dominated := false
		for _, u := range cand {
			c.comparisons++
			if subspace.Dominates(u, t, m) {
				dominated = true
				break
			}
		}
		if !dominated {
			skySubs = append(skySubs, m)
		}
	}

	// 2. Repair stored tuples that t now dominates somewhere.
	c.repairAfter(t)

	// 3. Store t at the minimal elements of skySubs.
	for _, m := range minimalOf(skySubs) {
		c.cells[m] = append(c.cells[m], t)
		c.stored++
	}
	return skySubs
}

// repairAfter removes every stored tuple u from cells where t now
// dominates it and re-homes u at its new minimum subspaces. A tuple is
// affected only if t dominates it in one of its stored (minimum)
// subspaces. All victims' new minima are computed against the pristine
// pre-insertion state before any cell is mutated, so victims cannot
// perturb each other's candidate sets.
func (c *CSC) repairAfter(t *relation.Tuple) {
	type victim struct {
		u       *relation.Tuple
		oldMins []subspace.Mask
		newMins []subspace.Mask
	}
	var victims []victim
	seen := map[int64]bool{}
	for cellMask, ts := range c.cells {
		for _, u := range ts {
			c.comparisons++
			if subspace.Dominates(t, u, cellMask) && !seen[u.ID] {
				seen[u.ID] = true
				victims = append(victims, victim{u: u, oldMins: c.minsOf(u)})
			}
		}
	}
	scratch := map[int64]bool{}
	for i := range victims {
		v := &victims[i]
		rel := subspace.Compare(t, v.u, c.m)
		// New skyline set of u: subspaces where u was skyline before
		// (checked against the candidate set — see package comment on
		// ties) and where t does not dominate u.
		var newSky []subspace.Mask
		for _, m := range c.subs {
			if rel.DominatesIn(m) {
				continue
			}
			dominated := false
			for _, w := range c.candidates(m, scratch) {
				if w.ID == v.u.ID {
					continue
				}
				c.comparisons++
				if subspace.Dominates(w, v.u, m) {
					dominated = true
					break
				}
			}
			if !dominated {
				newSky = append(newSky, m)
			}
		}
		v.newMins = minimalOf(newSky)
	}
	for _, v := range victims {
		inNew := map[subspace.Mask]bool{}
		for _, m := range v.newMins {
			inNew[m] = true
		}
		for _, m := range v.oldMins {
			if !inNew[m] {
				c.removeFromCell(m, v.u)
			} else {
				delete(inNew, m) // already stored there
			}
		}
		for m := range inNew {
			c.cells[m] = append(c.cells[m], v.u)
			c.stored++
		}
	}
}

func (c *CSC) minsOf(u *relation.Tuple) []subspace.Mask {
	var out []subspace.Mask
	for m, ts := range c.cells {
		for _, v := range ts {
			if v == u {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

func (c *CSC) removeFromCell(m subspace.Mask, u *relation.Tuple) {
	ts := c.cells[m]
	for i, v := range ts {
		if v == u {
			copy(ts[i:], ts[i+1:])
			ts = ts[:len(ts)-1]
			c.stored--
			if len(ts) == 0 {
				delete(c.cells, m)
			} else {
				c.cells[m] = ts
			}
			return
		}
	}
}

// minimalOf returns the masks with no proper submask in the input.
func minimalOf(masks []subspace.Mask) []subspace.Mask {
	var out []subspace.Mask
	for _, a := range masks {
		minimal := true
		for _, b := range masks {
			if b != a && b&^a == 0 {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, a)
		}
	}
	return out
}

// Cells exposes the internal cell map for invariant checking in tests.
func (c *CSC) Cells() map[subspace.Mask][]*relation.Tuple { return c.cells }
