package csc

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/skyline"
	"repro/internal/subspace"
)

func cscSchema(t *testing.T, m int) *relation.Schema {
	t.Helper()
	names := []string{"m1", "m2", "m3", "m4"}
	ms := make([]relation.MeasureAttr, m)
	for i := range ms {
		ms[i] = relation.MeasureAttr{Name: names[i], Direction: relation.LargerBetter}
	}
	s, err := relation.NewSchema("r", []relation.DimAttr{{Name: "d"}}, ms)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func idsOf(ts []*relation.Tuple) []int64 {
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []*relation.Tuple) bool {
	x, y := idsOf(a), idsOf(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func TestInsertReportsSkylineSubspaces(t *testing.T) {
	s := cscSchema(t, 2)
	c := New(2, -1)
	t1, _ := relation.NewTuple(s, 0, []int32{0}, []float64{10, 15})
	t2, _ := relation.NewTuple(s, 1, []int32{0}, []float64{15, 10})
	t3, _ := relation.NewTuple(s, 2, []int32{0}, []float64{20, 20})

	subs := c.Insert(t1)
	if len(subs) != 3 {
		t.Errorf("first tuple skyline subspaces = %b, want all 3", subs)
	}
	subs = c.Insert(t2)
	// t2 (15,10): beats t1 on m1, loses on m2 → skyline in {m1}, {m1,m2}.
	want := map[subspace.Mask]bool{0b01: true, 0b11: true}
	if len(subs) != 2 || !want[subs[0]] || !want[subs[1]] {
		t.Errorf("t2 skyline subspaces = %b, want {m1} and full", subs)
	}
	subs = c.Insert(t3)
	if len(subs) != 3 {
		t.Errorf("t3 dominates all: subspaces = %b, want all 3", subs)
	}
	// After t3, t1 and t2 are dominated everywhere: stored nowhere.
	for m, cell := range c.Cells() {
		for _, u := range cell {
			if u.ID != 2 {
				t.Errorf("cell %b still stores t%d", m, u.ID+1)
			}
		}
	}
}

// Invariant: after any insertion sequence, cell(M) is exactly the set of
// tuples whose minimal skyline subspaces include M, and Query(M) equals the
// reference skyline.
func TestCSCInvariantRandom(t *testing.T) {
	const m = 3
	s := cscSchema(t, m)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		c := New(m, -1)
		var all []*relation.Tuple
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			tu, _ := relation.NewTuple(s, int64(i), []int32{0},
				[]float64{float64(rng.Intn(6)), float64(rng.Intn(6)), float64(rng.Intn(6))})
			got := c.Insert(tu)
			all = append(all, tu)

			// Inserted tuple's reported subspaces must match the oracle.
			var want []subspace.Mask
			for _, sub := range subspace.Enumerate(m, -1) {
				if skyline.IsSkyline(tu, all, sub) {
					want = append(want, sub)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d tuple %d: reported %b, want %b", trial, i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("trial %d tuple %d: reported %b, want %b", trial, i, got, want)
				}
			}
		}
		// Cell invariant.
		for _, sub := range subspace.Enumerate(m, -1) {
			var wantCell []*relation.Tuple
			for _, u := range all {
				mins := skyline.MinimalSubspaces(u, all, m, -1)
				for _, mm := range mins {
					if mm == sub {
						wantCell = append(wantCell, u)
						break
					}
				}
			}
			if !sameIDs(c.Cells()[sub], wantCell) {
				t.Fatalf("trial %d cell %b: got %v, want %v",
					trial, sub, idsOf(c.Cells()[sub]), idsOf(wantCell))
			}
			// Query correctness.
			if !sameIDs(c.Query(sub), skyline.Compute(all, sub)) {
				t.Fatalf("trial %d query %b: got %v, want %v",
					trial, sub, idsOf(c.Query(sub)), idsOf(skyline.Compute(all, sub)))
			}
		}
	}
}

func TestCSCRespectsMaxSize(t *testing.T) {
	s := cscSchema(t, 3)
	c := New(3, 2)
	t1, _ := relation.NewTuple(s, 0, []int32{0}, []float64{1, 2, 3})
	subs := c.Insert(t1)
	for _, m := range subs {
		if subspace.Size(m) > 2 {
			t.Errorf("reported subspace %b exceeds m̂=2", m)
		}
	}
	if len(subs) != 6 { // C(3,1)+C(3,2)
		t.Errorf("reported %d subspaces, want 6", len(subs))
	}
}

func TestCSCStoredCounter(t *testing.T) {
	s := cscSchema(t, 2)
	c := New(2, -1)
	t1, _ := relation.NewTuple(s, 0, []int32{0}, []float64{1, 1})
	c.Insert(t1)
	if c.StoredTuples() != 1 { // min subspace of a lone tuple: {m1},{m2} minimal... both singletons
		// A lone tuple is skyline everywhere; minimal subspaces are the two
		// singletons → stored twice.
		t.Logf("stored = %d", c.StoredTuples())
	}
	got := c.StoredTuples()
	if got != 2 {
		t.Errorf("StoredTuples = %d, want 2 (both singleton subspaces)", got)
	}
	t2, _ := relation.NewTuple(s, 1, []int32{0}, []float64{2, 2})
	c.Insert(t2)
	if c.StoredTuples() != 2 {
		t.Errorf("after dominating insert: StoredTuples = %d, want 2", c.StoredTuples())
	}
	if c.Comparisons() == 0 {
		t.Error("comparison counter never advanced")
	}
}

func TestCSCDuplicateMeasures(t *testing.T) {
	s := cscSchema(t, 2)
	c := New(2, -1)
	t1, _ := relation.NewTuple(s, 0, []int32{0}, []float64{5, 5})
	t2, _ := relation.NewTuple(s, 1, []int32{0}, []float64{5, 5})
	c.Insert(t1)
	subs := c.Insert(t2)
	if len(subs) != 3 {
		t.Errorf("equal tuples do not dominate: t2 subspaces = %b, want all 3", subs)
	}
	if got := c.Query(0b11); len(got) != 2 {
		t.Errorf("both duplicates must be in the skyline, got %v", idsOf(got))
	}
}
