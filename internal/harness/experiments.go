package harness

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/relation"
)

// Params carries the experiment knobs, mirroring the paper's §VI-A. Zero
// values select per-experiment defaults scaled down from the paper's
// (317K-tuple / 16 GB JVM) setting to laptop budgets; pass explicit values
// to scale up.
type Params struct {
	N           int     // stream length
	D, M        int     // dimension / measure space (Tables V, VI)
	MaxBound    int     // d̂ (paper: 4 for §VI, 3 for §VII)
	MaxMeasure  int     // m̂ (paper: m for §VI, 3 for §VII)
	Tau         float64 // τ for prominence experiments
	Seed        int64
	Checkpoints int
}

func (p Params) withDefaults(n, d, m int) Params {
	if p.N == 0 {
		p.N = n
	}
	if p.D == 0 {
		p.D = d
	}
	if p.M == 0 {
		p.M = m
	}
	if p.MaxBound == 0 {
		p.MaxBound = 4
	}
	if p.MaxMeasure == 0 {
		p.MaxMeasure = -1
	}
	if p.Checkpoints == 0 {
		p.Checkpoints = 10
	}
	return p
}

func (p Params) config(s *relation.Schema) core.Config {
	return core.Config{Schema: s, MaxBound: p.MaxBound, MaxMeasure: p.MaxMeasure}
}

// timeVsN runs the given algorithms over one stream, one series per
// algorithm: x = tuple id, y = per-tuple ms over the checkpoint window.
func timeVsN(title, dataset string, p Params, algs []AlgorithmID) (*Result, error) {
	tb, err := StreamSpec{Dataset: dataset, D: p.D, M: p.M, N: p.N, Seed: p.Seed}.Build()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title:  title,
		XLabel: "tuple id",
		YLabel: "execution time per tuple (ms), checkpoint window average",
		Notes: []string{
			fmt.Sprintf("dataset=%s n=%d d=%d m=%d d̂=%d m̂=%d seed=%d",
				dataset, p.N, p.D, p.M, p.MaxBound, p.MaxMeasure, p.Seed),
		},
	}
	for _, id := range algs {
		d, err := NewDiscoverer(id, p.config(tb.Schema()), "")
		if err != nil {
			return nil, err
		}
		xs, ys, avg := runTimed(d, tb, p.Checkpoints)
		res.Series = append(res.Series, Series{Label: string(id), X: xs, Y: ys})
		res.Notes = append(res.Notes, fmt.Sprintf("%s: overall avg %.4g ms/tuple", id, avg))
		cleanup(d)
	}
	return res, nil
}

// timeVsDim sweeps d or m, one point per value: y = overall per-tuple ms.
func timeVsDim(title, dataset string, p Params, algs []AlgorithmID, sweep string, vals []int) (*Result, error) {
	res := &Result{
		Title:  title,
		XLabel: "number of " + sweep + " attributes",
		YLabel: "execution time per tuple (ms), run average",
		Notes: []string{
			fmt.Sprintf("dataset=%s n=%d d̂=%d m̂=%d seed=%d", dataset, p.N, p.MaxBound, p.MaxMeasure, p.Seed),
		},
	}
	series := make([]Series, len(algs))
	for i, id := range algs {
		series[i].Label = string(id)
	}
	for _, v := range vals {
		q := p
		if sweep == "dimension" {
			q.D = v
		} else {
			q.M = v
		}
		tb, err := StreamSpec{Dataset: dataset, D: q.D, M: q.M, N: q.N, Seed: q.Seed}.Build()
		if err != nil {
			return nil, err
		}
		for i, id := range algs {
			d, err := NewDiscoverer(id, q.config(tb.Schema()), "")
			if err != nil {
				return nil, err
			}
			_, _, avg := runTimed(d, tb, 1)
			series[i].X = append(series[i].X, float64(v))
			series[i].Y = append(series[i].Y, avg)
			cleanup(d)
		}
	}
	res.Series = series
	return res, nil
}

func cleanup(d core.Discoverer) {
	d.Close()
}

// Fig7a: per-tuple time vs n for the baselines, C-CSC, BottomUp, TopDown
// (NBA, d=5, m=7). Expected shape: BottomUp/TopDown beat the baselines by
// orders of magnitude and C-CSC by about one order.
func Fig7a(p Params) (*Result, error) {
	p = p.withDefaults(4000, 5, 7)
	return timeVsN("Fig 7a — time/tuple vs n: baselines vs lattice algorithms (NBA)",
		"nba", p, []AlgorithmID{BaselineSeq, BaselineIdx, CCSC, BottomUp, TopDown})
}

// Fig7b: vs d (4–7), NBA, m=7, fixed n.
func Fig7b(p Params) (*Result, error) {
	p = p.withDefaults(2000, 5, 7)
	return timeVsDim("Fig 7b — time/tuple vs d (NBA, m=7)",
		"nba", p, []AlgorithmID{BaselineSeq, BaselineIdx, CCSC, BottomUp, TopDown},
		"dimension", []int{4, 5, 6, 7})
}

// Fig7c: vs m (4–7), NBA, d=5, fixed n.
func Fig7c(p Params) (*Result, error) {
	p = p.withDefaults(2000, 5, 7)
	return timeVsDim("Fig 7c — time/tuple vs m (NBA, d=5)",
		"nba", p, []AlgorithmID{BaselineSeq, BaselineIdx, CCSC, BottomUp, TopDown},
		"measure", []int{4, 5, 6, 7})
}

// Fig8a: per-tuple time vs n for C-CSC and the four lattice algorithms
// (NBA, d=5, m=7). Expected: sharing (S*) helps; bottom-up beats top-down
// on time.
func Fig8a(p Params) (*Result, error) {
	p = p.withDefaults(12000, 5, 7)
	return timeVsN("Fig 8a — time/tuple vs n: sharing variants (NBA)",
		"nba", p, []AlgorithmID{CCSC, BottomUp, TopDown, SBottomUp, STopDown})
}

// Fig8b: vs d.
func Fig8b(p Params) (*Result, error) {
	p = p.withDefaults(4000, 5, 7)
	return timeVsDim("Fig 8b — time/tuple vs d (NBA, m=7)",
		"nba", p, []AlgorithmID{CCSC, BottomUp, TopDown, SBottomUp, STopDown},
		"dimension", []int{4, 5, 6, 7})
}

// Fig8c: vs m.
func Fig8c(p Params) (*Result, error) {
	p = p.withDefaults(4000, 5, 7)
	return timeVsDim("Fig 8c — time/tuple vs m (NBA, d=5)",
		"nba", p, []AlgorithmID{CCSC, BottomUp, TopDown, SBottomUp, STopDown},
		"measure", []int{4, 5, 6, 7})
}

// Fig9: weather dataset, time vs n. In the paper the bottom-up family
// exhausts the 16 GB heap early on this (larger) dataset; here the note
// reports the stored-tuple gap instead of crashing the host.
func Fig9(p Params) (*Result, error) {
	p = p.withDefaults(12000, 5, 7)
	res, err := timeVsN("Fig 9 — time/tuple vs n (weather)",
		"weather", p, []AlgorithmID{CCSC, BottomUp, TopDown, SBottomUp, STopDown})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"paper: BottomUp/SBottomUp exhaust the 16GB JVM heap shortly after 0.2M tuples on this dataset; see Fig 10 for the storage gap that causes it")
	return res, nil
}

// Fig10 charts memory consumption vs n: (a) estimated resident bytes of
// the µ store, (b) number of stored skyline tuples. Expected shape:
// BottomUp ≫ TopDown by several ×; C-CSC in between; the S* variants
// match their base algorithms exactly (same materialisation scheme).
func Fig10(p Params) (*Result, error) {
	p = p.withDefaults(12000, 5, 7)
	tb, err := StreamSpec{Dataset: "nba", D: p.D, M: p.M, N: p.N, Seed: p.Seed}.Build()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title:  "Fig 10 — memory: stored skyline tuples (b) and estimated MB (a) vs n (NBA)",
		XLabel: "tuple id",
		YLabel: "stored tuple entries (series '#') and estimated MB (series 'MB')",
		Notes: []string{
			fmt.Sprintf("n=%d d=%d m=%d d̂=%d", p.N, p.D, p.M, p.MaxBound),
			"MB estimate = stored entries × encoded tuple size (see relation.EncodedSize); Fig 10a proxy",
		},
	}
	algs := []AlgorithmID{CCSC, BottomUp, TopDown, SBottomUp, STopDown}
	perTuple := float64(relation.EncodedSize(tb.Schema()))
	window := p.N / p.Checkpoints
	if window == 0 {
		window = 1
	}
	for _, id := range algs {
		d, err := NewDiscoverer(id, p.config(tb.Schema()), "")
		if err != nil {
			return nil, err
		}
		var xs, entries, mb []float64
		for i := 0; i < tb.Len(); i++ {
			d.Process(tb.At(i))
			if (i+1)%window == 0 || i == tb.Len()-1 {
				st := d.StoreStats()
				xs = append(xs, float64(i+1))
				entries = append(entries, float64(st.StoredTuples))
				mb = append(mb, float64(st.StoredTuples)*perTuple/(1<<20))
			}
		}
		res.Series = append(res.Series,
			Series{Label: "#" + string(id), X: xs, Y: entries},
			Series{Label: "MB:" + string(id), X: xs, Y: mb})
		cleanup(d)
	}
	return res, nil
}

// Fig11 charts cumulative work vs n: (a) tuple comparisons, (b) traversed
// constraints, for the four lattice algorithms. Expected: STopDown ≪
// TopDown on both; SBottomUp ≈ BottomUp (the paper's boundary-constraint
// explanation).
func Fig11(p Params) (*Result, error) {
	p = p.withDefaults(12000, 5, 7)
	tb, err := StreamSpec{Dataset: "nba", D: p.D, M: p.M, N: p.N, Seed: p.Seed}.Build()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title:  "Fig 11 — cumulative comparisons (cmp) and traversed constraints (trv) vs n (NBA)",
		XLabel: "tuple id",
		YLabel: "cumulative count",
		Notes:  []string{fmt.Sprintf("n=%d d=%d m=%d d̂=%d", p.N, p.D, p.M, p.MaxBound)},
	}
	window := p.N / p.Checkpoints
	if window == 0 {
		window = 1
	}
	for _, id := range []AlgorithmID{BottomUp, TopDown, SBottomUp, STopDown} {
		d, err := NewDiscoverer(id, p.config(tb.Schema()), "")
		if err != nil {
			return nil, err
		}
		var xs, cmps, trvs []float64
		for i := 0; i < tb.Len(); i++ {
			d.Process(tb.At(i))
			if (i+1)%window == 0 || i == tb.Len()-1 {
				m := d.Metrics()
				xs = append(xs, float64(i+1))
				cmps = append(cmps, float64(m.Comparisons))
				trvs = append(trvs, float64(m.Traversed))
			}
		}
		res.Series = append(res.Series,
			Series{Label: "cmp:" + string(id), X: xs, Y: cmps},
			Series{Label: "trv:" + string(id), X: xs, Y: trvs})
		cleanup(d)
	}
	return res, nil
}

// fileBased runs FSBottomUp and FSTopDown (file-backed stores). dir == ""
// uses a fresh temp directory, removed afterwards.
func fileBased(title, dataset string, p Params, sweep string, vals []int) (*Result, error) {
	dir, err := os.MkdirTemp("", "situfact-fs-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if sweep == "" {
		tb, err := StreamSpec{Dataset: dataset, D: p.D, M: p.M, N: p.N, Seed: p.Seed}.Build()
		if err != nil {
			return nil, err
		}
		res := &Result{
			Title:  title,
			XLabel: "tuple id",
			YLabel: "execution time per tuple (ms), checkpoint window average",
			Notes:  []string{fmt.Sprintf("dataset=%s n=%d d=%d m=%d d̂=%d", dataset, p.N, p.D, p.M, p.MaxBound)},
		}
		for _, id := range []AlgorithmID{FSBottomUp, FSTopDown} {
			d, err := NewDiscoverer(id, p.config(tb.Schema()), dir)
			if err != nil {
				return nil, err
			}
			xs, ys, avg := runTimed(d, tb, p.Checkpoints)
			st := d.StoreStats()
			res.Series = append(res.Series, Series{Label: string(id), X: xs, Y: ys})
			res.Notes = append(res.Notes, fmt.Sprintf("%s: avg %.4g ms/tuple, %d file reads, %d file writes",
				id, avg, st.Reads, st.Writes))
			cleanup(d)
		}
		return res, nil
	}
	// sweep over d or m
	res := &Result{
		Title:  title,
		XLabel: "number of " + sweep + " attributes",
		YLabel: "execution time per tuple (ms), run average",
		Notes:  []string{fmt.Sprintf("dataset=%s n=%d d̂=%d", dataset, p.N, p.MaxBound)},
	}
	series := []Series{{Label: string(FSBottomUp)}, {Label: string(FSTopDown)}}
	for _, v := range vals {
		q := p
		if sweep == "dimension" {
			q.D = v
		} else {
			q.M = v
		}
		tb, err := StreamSpec{Dataset: dataset, D: q.D, M: q.M, N: q.N, Seed: q.Seed}.Build()
		if err != nil {
			return nil, err
		}
		sub := fmt.Sprintf("%s/%s%d", dir, sweep, v)
		for i, id := range []AlgorithmID{FSBottomUp, FSTopDown} {
			d, err := NewDiscoverer(id, q.config(tb.Schema()), sub)
			if err != nil {
				return nil, err
			}
			_, _, avg := runTimed(d, tb, 1)
			series[i].X = append(series[i].X, float64(v))
			series[i].Y = append(series[i].Y, avg)
			cleanup(d)
		}
	}
	res.Series = series
	return res, nil
}

// Fig12a: file-based variants vs n (NBA). Expected: FSTopDown beats
// FSBottomUp by multiple times (fewer non-empty cells → fewer file reads
// and writes), inverting the in-memory time ordering.
func Fig12a(p Params) (*Result, error) {
	p = p.withDefaults(120, 5, 7) // seconds/tuple: keep the default run short
	return fileBased("Fig 12a — file-based time/tuple vs n (NBA)", "nba", p, "", nil)
}

// Fig12b: file-based vs d.
func Fig12b(p Params) (*Result, error) {
	p = p.withDefaults(40, 5, 7)
	return fileBased("Fig 12b — file-based time/tuple vs d (NBA, m=7)", "nba", p, "dimension", []int{4, 5, 6, 7})
}

// Fig12c: file-based vs m.
func Fig12c(p Params) (*Result, error) {
	p = p.withDefaults(40, 5, 7)
	return fileBased("Fig 12c — file-based time/tuple vs m (NBA, d=5)", "nba", p, "measure", []int{4, 5, 6, 7})
}

// Fig13: file-based variants on the weather dataset vs n.
func Fig13(p Params) (*Result, error) {
	p = p.withDefaults(120, 5, 7)
	return fileBased("Fig 13 — file-based time/tuple vs n (weather)", "weather", p, "", nil)
}
