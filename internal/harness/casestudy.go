package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/prominence"
	"repro/internal/subspace"
)

// promRecord captures the prominent-fact outcome of one arrival: the
// maximum prominence among S_t and the (bound(C), |M|) profile of every
// fact attaining it. Recording the profiles once lets Fig14/Fig15 be
// post-filtered for any τ.
type promRecord struct {
	tupleID int64
	best    float64
	// facts holds (bound, msize) of every max-prominence fact.
	facts [][2]int
}

// promStream runs SBottomUp with prominence tracking over the stream and
// returns one record per arrival. Params: the paper's §VII setting is
// d=5, m=7, d̂=3, m̂=3.
func promStream(p Params) ([]promRecord, error) {
	tb, err := StreamSpec{Dataset: "nba", D: p.D, M: p.M, N: p.N, Seed: p.Seed}.Build()
	if err != nil {
		return nil, err
	}
	alg, err := core.NewSBottomUp(p.config(tb.Schema()))
	if err != nil {
		return nil, err
	}
	counter := core.NewContextCounter(p.D, p.MaxBound)
	recs := make([]promRecord, 0, tb.Len())
	for i := 0; i < tb.Len(); i++ {
		tu := tb.At(i)
		facts := alg.Process(tu)
		counter.Observe(tu)
		scored := prominence.Score(facts, counter, alg)
		rec := promRecord{tupleID: tu.ID}
		if len(scored) > 0 {
			rec.best = scored[0].Prominence
			for _, sf := range scored {
				if sf.Prominence != rec.best {
					break
				}
				rec.facts = append(rec.facts, [2]int{sf.Constraint.Bound(), subspace.Size(sf.Subspace)})
			}
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// Fig14 reports the number of prominent facts per bucket of 1K tuples for
// threshold τ (paper: τ=10³ over 317K tuples; scale τ to your n — the
// default is n/40, keeping the context-size precondition satisfiable).
// Expected shape: values oscillate with no downward trend, because new
// dimension values (players, seasons) keep forming new contexts.
func Fig14(p Params) (*Result, error) {
	p = p.withDefaults(20000, 5, 7)
	if p.MaxBound == 4 {
		p.MaxBound = 3 // §VII setting
	}
	if p.MaxMeasure < 0 {
		p.MaxMeasure = 3
	}
	if p.Tau == 0 {
		p.Tau = float64(p.N) / 40
	}
	recs, err := promStream(p)
	if err != nil {
		return nil, err
	}
	bucket := 1000
	counts := map[int]int{}
	for _, r := range recs {
		if r.best >= p.Tau {
			counts[int(r.tupleID)/bucket] += len(r.facts)
		}
	}
	res := &Result{
		Title:  "Fig 14 — number of prominent facts per 1K tuples",
		XLabel: "tuple bucket (×1000)",
		YLabel: fmt.Sprintf("prominent facts in bucket (τ=%g)", p.Tau),
		Notes: []string{
			fmt.Sprintf("n=%d d=%d m=%d d̂=%d m̂=%d τ=%g", p.N, p.D, p.M, p.MaxBound, p.MaxMeasure, p.Tau),
			"paper shape: oscillation without a downward trend (new contexts keep forming)",
		},
	}
	s := Series{Label: fmt.Sprintf("τ=%g", p.Tau)}
	for b := 0; b <= (p.N-1)/bucket; b++ {
		s.X = append(s.X, float64(b))
		s.Y = append(s.Y, float64(counts[b]))
	}
	res.Series = []Series{s}
	return res, nil
}

// Fig15 reports the distribution of prominent facts (a) by the number of
// bound dimension attributes and (b) by measure-subspace dimensionality,
// for a sweep of τ values. Expected shape: humps at bound(C) ∈ {1,2} and
// |M| = 2 — extreme contexts are either too competitive (whole table) or
// too small (≥ τ tuples needed), and single measures demand strict maxima
// while wide subspaces dilute prominence with big skylines.
func Fig15(p Params) (*Result, error) {
	p = p.withDefaults(20000, 5, 7)
	if p.MaxBound == 4 {
		p.MaxBound = 3
	}
	if p.MaxMeasure < 0 {
		p.MaxMeasure = 3
	}
	recs, err := promStream(p)
	if err != nil {
		return nil, err
	}
	taus := []float64{float64(p.N) / 400, float64(p.N) / 40, float64(p.N) / 4}
	if p.Tau != 0 {
		taus = []float64{p.Tau / 10, p.Tau, p.Tau * 10}
	}
	res := &Result{
		Title:  "Fig 15 — distribution of prominent facts by bound(C) (series b=) and |M| (series m=)",
		XLabel: "bound(C) or |M|",
		YLabel: "number of prominent facts",
		Notes: []string{
			fmt.Sprintf("n=%d d=%d m=%d d̂=%d m̂=%d", p.N, p.D, p.M, p.MaxBound, p.MaxMeasure),
			"paper shape: humps at bound(C) ∈ {1,2} and |M| = 2",
		},
	}
	for _, tau := range taus {
		byBound := map[int]int{}
		byMsize := map[int]int{}
		for _, r := range recs {
			if r.best < tau {
				continue
			}
			for _, f := range r.facts {
				byBound[f[0]]++
				byMsize[f[1]]++
			}
		}
		sb := Series{Label: fmt.Sprintf("b=,τ=%g", tau)}
		for b := 0; b <= p.MaxBound; b++ {
			sb.X = append(sb.X, float64(b))
			sb.Y = append(sb.Y, float64(byBound[b]))
		}
		sm := Series{Label: fmt.Sprintf("m=,τ=%g", tau)}
		for msz := 1; msz <= p.MaxMeasure; msz++ {
			sm.X = append(sm.X, float64(msz))
			sm.Y = append(sm.Y, float64(byMsize[msz]))
		}
		res.Series = append(res.Series, sb, sm)
	}
	return res, nil
}

// CaseStudy streams the NBA workload under the §VII setting and writes the
// highest-prominence discovered facts, narrated, to w (the analogue of the
// paper's Lamar Odom / Allen Iverson / Damon Stoudamire bullets).
func CaseStudy(w io.Writer, p Params) error {
	p = p.withDefaults(20000, 5, 7)
	if p.MaxBound == 4 {
		p.MaxBound = 3
	}
	if p.MaxMeasure < 0 {
		p.MaxMeasure = 3
	}
	if p.Tau == 0 {
		p.Tau = float64(p.N) / 40
	}
	tb, err := StreamSpec{Dataset: "nba", D: p.D, M: p.M, N: p.N, Seed: p.Seed}.Build()
	if err != nil {
		return err
	}
	alg, err := core.NewSBottomUp(p.config(tb.Schema()))
	if err != nil {
		return err
	}
	counter := core.NewContextCounter(p.D, p.MaxBound)
	fmt.Fprintf(w, "# Case study (§VII): prominent facts, τ=%g, d̂=%d, m̂=%d, n=%d\n",
		p.Tau, p.MaxBound, p.MaxMeasure, p.N)
	shown := 0
	for i := 0; i < tb.Len(); i++ {
		tu := tb.At(i)
		facts := alg.Process(tu)
		counter.Observe(tu)
		scored := prominence.Score(facts, counter, alg)
		prom := prominence.Prominent(scored, p.Tau)
		if len(prom) == 0 {
			continue
		}
		for _, sf := range prom[:min(2, len(prom))] {
			fmt.Fprintf(w, "tuple %6d  prom %8.4g = %6d/%-3d  (%s | {%s})\n",
				tu.ID, sf.Prominence, sf.ContextSize, sf.SkylineSize,
				sf.Constraint.Format(tb.Schema(), tb.Dict()),
				joinNames(subspace.Names(sf.Subspace, tb.Schema())))
		}
		shown++
	}
	fmt.Fprintf(w, "# arrivals with prominent facts: %d of %d\n", shown, tb.Len())
	return nil
}

func joinNames(ns []string) string {
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
