// Package harness drives the experiments of the paper's evaluation
// (Sultana et al., ICDE 2014, §VI–VII): per-tuple execution time under
// varying n, d and m; memory and stored-tuple counts; comparison and
// traversal counters; file-based variants; and the prominence case study.
// Each exported Fig* function regenerates the series of one figure of the
// paper and returns a renderable Result.
//
// Absolute numbers differ from the paper (different hardware, language and
// — necessarily — synthetic rather than proprietary data); the reproduced
// property is the SHAPE of each figure: orderings, gaps in orders of
// magnitude, growth trends and crossovers. EXPERIMENTS.md records
// paper-vs-measured for every figure.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/store"
)

// AlgorithmID names an algorithm in experiment configurations.
type AlgorithmID string

// The algorithm identifiers, matching the paper's names.
const (
	BruteForce  AlgorithmID = "BruteForce"
	BaselineSeq AlgorithmID = "BaselineSeq"
	BaselineIdx AlgorithmID = "BaselineIdx"
	CCSC        AlgorithmID = "C-CSC"
	BottomUp    AlgorithmID = "BottomUp"
	TopDown     AlgorithmID = "TopDown"
	SBottomUp   AlgorithmID = "SBottomUp"
	STopDown    AlgorithmID = "STopDown"
	FSBottomUp  AlgorithmID = "FSBottomUp" // file-backed SBottomUp
	FSTopDown   AlgorithmID = "FSTopDown"  // file-backed STopDown
)

// NewDiscoverer instantiates an algorithm. File-backed variants place
// their cell store under dir (one fresh subdirectory per instance).
func NewDiscoverer(id AlgorithmID, cfg core.Config, dir string) (core.Discoverer, error) {
	switch id {
	case BruteForce:
		return core.NewBruteForce(cfg)
	case BaselineSeq:
		return core.NewBaselineSeq(cfg)
	case BaselineIdx:
		return core.NewBaselineIdx(cfg)
	case CCSC:
		return core.NewCCSC(cfg)
	case BottomUp:
		return core.NewBottomUp(cfg)
	case TopDown:
		return core.NewTopDown(cfg)
	case SBottomUp:
		return core.NewSBottomUp(cfg)
	case STopDown:
		return core.NewSTopDown(cfg)
	case FSBottomUp, FSTopDown:
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "situfact-cells-*")
			if err != nil {
				return nil, err
			}
		}
		sub := filepath.Join(dir, strings.ToLower(string(id)))
		fs, err := store.NewFile(sub, cfg.Schema)
		if err != nil {
			return nil, err
		}
		cfg.Store = fs
		if id == FSBottomUp {
			return core.NewSBottomUp(cfg)
		}
		return core.NewSTopDown(cfg)
	default:
		return nil, fmt.Errorf("harness: unknown algorithm %q", id)
	}
}

// StreamSpec describes a workload stream.
type StreamSpec struct {
	// Dataset is "nba", "weather", or "generic:<dist>" (independent,
	// correlated, anti-correlated).
	Dataset string
	// D, M select the dimension/measure space (Tables V and VI).
	D, M int
	// N is the stream length.
	N int
	// Seed makes the stream deterministic.
	Seed int64
}

// Build materialises the stream as a table.
func (s StreamSpec) Build() (*relation.Table, error) {
	switch {
	case s.Dataset == "nba":
		g, err := gen.NewNBA(gen.NBAConfig{Seed: s.Seed}, s.D, s.M)
		if err != nil {
			return nil, err
		}
		tb := relation.NewTable(g.Schema())
		return tb, g.Fill(tb, s.N)
	case s.Dataset == "weather":
		g, err := gen.NewWeather(gen.WeatherConfig{Seed: s.Seed}, s.D, s.M)
		if err != nil {
			return nil, err
		}
		tb := relation.NewTable(g.Schema())
		return tb, g.Fill(tb, s.N)
	case strings.HasPrefix(s.Dataset, "generic:"):
		var dist gen.Distribution
		switch strings.TrimPrefix(s.Dataset, "generic:") {
		case "independent":
			dist = gen.Independent
		case "correlated":
			dist = gen.Correlated
		case "anti-correlated":
			dist = gen.AntiCorrelated
		default:
			return nil, fmt.Errorf("harness: unknown generic distribution in %q", s.Dataset)
		}
		g, err := gen.NewGeneric(gen.GenericConfig{Seed: s.Seed, D: s.D, M: s.M, Dist: dist})
		if err != nil {
			return nil, err
		}
		tb := relation.NewTable(g.Schema())
		return tb, g.Fill(tb, s.N)
	default:
		return nil, fmt.Errorf("harness: unknown dataset %q", s.Dataset)
	}
}

// Series is one labelled line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Result is a rendered experiment: the textual equivalent of one figure.
type Result struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes the result as an aligned text table (one x column, one
// column per series), preceded by title and followed by notes.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n#   y: %s\n", r.Title, r.YLabel); err != nil {
		return err
	}
	// Collect the union of x values.
	xsSet := map[float64]bool{}
	for _, s := range r.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	header := fmt.Sprintf("%-14s", r.XLabel)
	for _, s := range r.Series {
		header += fmt.Sprintf("%16s", s.Label)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, x := range xs {
		row := fmt.Sprintf("%-14g", x)
		for _, s := range r.Series {
			v, ok := lookup(s, x)
			if ok {
				row += fmt.Sprintf("%16.4g", v)
			} else {
				row += fmt.Sprintf("%16s", "-")
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the result as CSV (x, label, y rows).
func (r *Result) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "x,series,y\n"); err != nil {
		return err
	}
	for _, s := range r.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%g,%s,%g\n", s.X[i], s.Label, s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func lookup(s Series, x float64) (float64, bool) {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// runTimed feeds the table's tuples to the discoverer, recording the
// average per-tuple execution time (in milliseconds) over each checkpoint
// window. It returns the checkpoint positions and window averages plus the
// overall average.
func runTimed(d core.Discoverer, tb *relation.Table, checkpoints int) (xs, ys []float64, avgMs float64) {
	n := tb.Len()
	if checkpoints <= 0 {
		checkpoints = 10
	}
	window := n / checkpoints
	if window == 0 {
		window = 1
	}
	var windowDur, totalDur time.Duration
	count := 0
	for i := 0; i < n; i++ {
		t0 := time.Now()
		d.Process(tb.At(i))
		el := time.Since(t0)
		windowDur += el
		totalDur += el
		count++
		if count == window || i == n-1 {
			xs = append(xs, float64(i+1))
			ys = append(ys, float64(windowDur.Microseconds())/float64(count)/1000.0)
			windowDur, count = 0, 0
		}
	}
	return xs, ys, float64(totalDur.Microseconds()) / float64(n) / 1000.0
}
