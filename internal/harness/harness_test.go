package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// tiny returns laptop-instant parameters for smoke tests.
func tiny() Params {
	return Params{N: 200, Checkpoints: 4, Seed: 7}
}

func checkResult(t *testing.T, res *Result, err error, wantSeries int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", res.Title, len(res.Series), wantSeries)
	}
	for _, s := range res.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("%s/%s: bad series lengths %d/%d", res.Title, s.Label, len(s.X), len(s.Y))
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), res.Title) {
		t.Error("rendered output missing title")
	}
	buf.Reset()
	if err := res.RenderCSV(&buf); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "x,series,y") {
		t.Error("CSV output missing header")
	}
}

func TestFig7a(t *testing.T) {
	res, err := Fig7a(tiny())
	checkResult(t, res, err, 5)
}

func TestFig7bc(t *testing.T) {
	p := tiny()
	p.N = 60
	res, err := Fig7b(p)
	checkResult(t, res, err, 5)
	for _, s := range res.Series {
		if len(s.X) != 4 {
			t.Errorf("%s: %d sweep points, want 4 (d=4..7)", s.Label, len(s.X))
		}
	}
	res, err = Fig7c(p)
	checkResult(t, res, err, 5)
}

func TestFig8(t *testing.T) {
	res, err := Fig8a(tiny())
	checkResult(t, res, err, 5)
	p := tiny()
	p.N = 60
	res, err = Fig8b(p)
	checkResult(t, res, err, 5)
	res, err = Fig8c(p)
	checkResult(t, res, err, 5)
}

func TestFig9(t *testing.T) {
	res, err := Fig9(tiny())
	checkResult(t, res, err, 5)
}

func TestFig10ShapeHolds(t *testing.T) {
	p := tiny()
	p.N = 600
	res, err := Fig10(p)
	checkResult(t, res, err, 10)
	// The paper's headline memory result: BottomUp stores several times
	// more tuple entries than TopDown, and the S* variants match their
	// bases exactly.
	last := func(label string) float64 {
		for _, s := range res.Series {
			if s.Label == label {
				return s.Y[len(s.Y)-1]
			}
		}
		t.Fatalf("series %q missing", label)
		return 0
	}
	bu, td := last("#BottomUp"), last("#TopDown")
	if bu <= td {
		t.Errorf("BottomUp stored %.0f entries, TopDown %.0f; want BottomUp > TopDown", bu, td)
	}
	if last("#SBottomUp") != bu {
		t.Errorf("SBottomUp storage %.0f != BottomUp %.0f (same materialisation scheme)", last("#SBottomUp"), bu)
	}
	if last("#STopDown") != td {
		t.Errorf("STopDown storage %.0f != TopDown %.0f", last("#STopDown"), td)
	}
}

func TestFig11ShapeHolds(t *testing.T) {
	p := tiny()
	p.N = 600
	res, err := Fig11(p)
	checkResult(t, res, err, 8)
	last := func(label string) float64 {
		for _, s := range res.Series {
			if s.Label == label {
				return s.Y[len(s.Y)-1]
			}
		}
		t.Fatalf("series %q missing", label)
		return 0
	}
	if last("cmp:STopDown") > last("cmp:TopDown") {
		t.Errorf("STopDown comparisons (%.0f) exceed TopDown (%.0f)", last("cmp:STopDown"), last("cmp:TopDown"))
	}
	if last("trv:STopDown") > last("trv:TopDown") {
		t.Errorf("STopDown traversals (%.0f) exceed TopDown (%.0f)", last("trv:STopDown"), last("trv:TopDown"))
	}
	if last("trv:SBottomUp") > last("trv:BottomUp") {
		t.Errorf("SBottomUp traversals (%.0f) exceed BottomUp (%.0f)", last("trv:SBottomUp"), last("trv:BottomUp"))
	}
}

func TestFig12and13(t *testing.T) {
	if testing.Short() {
		t.Skip("file-based experiments do real per-cell I/O")
	}
	// Per-cell file I/O makes even one tuple expensive — FSBottomUp costs
	// seconds per tuple here, matching the 0.5–2.5 s/tuple the paper
	// itself reports for the FS variants — so the smoke streams are tiny.
	p := tiny()
	p.Checkpoints = 2
	p.N = 6
	res, err := Fig12a(p)
	checkResult(t, res, err, 2)
	p.N = 3
	res, err = Fig12b(p)
	checkResult(t, res, err, 2)
	res, err = Fig12c(p)
	checkResult(t, res, err, 2)
	p.N = 6
	res, err = Fig13(p)
	checkResult(t, res, err, 2)
}

func TestFig14(t *testing.T) {
	p := tiny()
	p.N = 2500
	p.Tau = 5
	res, err := Fig14(p)
	checkResult(t, res, err, 1)
	total := 0.0
	for _, y := range res.Series[0].Y {
		total += y
	}
	if total == 0 {
		t.Error("no prominent facts found at a low τ — generator or scoring broken")
	}
}

func TestFig15(t *testing.T) {
	p := tiny()
	p.N = 2500
	p.Tau = 5
	res, err := Fig15(p)
	checkResult(t, res, err, 6)
}

func TestCaseStudy(t *testing.T) {
	var buf bytes.Buffer
	p := tiny()
	p.N = 1500
	p.Tau = 10
	if err := CaseStudy(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Case study") || !strings.Contains(out, "arrivals with prominent facts") {
		t.Errorf("case study output malformed:\n%s", out)
	}
}

func TestStreamSpecErrors(t *testing.T) {
	if _, err := (StreamSpec{Dataset: "nope", D: 5, M: 7, N: 1}).Build(); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := (StreamSpec{Dataset: "generic:nope", D: 2, M: 2, N: 1}).Build(); err == nil {
		t.Error("unknown generic distribution accepted")
	}
	if _, err := (StreamSpec{Dataset: "nba", D: 99, M: 7, N: 1}).Build(); err == nil {
		t.Error("bad d accepted")
	}
}

func TestStreamSpecGeneric(t *testing.T) {
	for _, dist := range []string{"independent", "correlated", "anti-correlated"} {
		tb, err := (StreamSpec{Dataset: "generic:" + dist, D: 3, M: 3, N: 50, Seed: 1}).Build()
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if tb.Len() != 50 {
			t.Errorf("%s: %d rows", dist, tb.Len())
		}
	}
}

func TestNewDiscovererRegistry(t *testing.T) {
	tb, err := (StreamSpec{Dataset: "nba", D: 4, M: 4, N: 1, Seed: 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Schema: tb.Schema(), MaxBound: -1, MaxMeasure: -1}
	for _, id := range []AlgorithmID{BruteForce, BaselineSeq, BaselineIdx, CCSC,
		BottomUp, TopDown, SBottomUp, STopDown, FSBottomUp, FSTopDown} {
		d, err := NewDiscoverer(id, cfg, t.TempDir())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		d.Process(tb.At(0))
		d.Close()
	}
	if _, err := NewDiscoverer("nope", cfg, ""); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
