// Package subspace implements measure subspaces and the dominance relation
// of skyline analysis (Sultana et al., ICDE 2014, Defs. 2–3), including the
// Proposition-4 machinery that lets one full-space comparison decide
// dominance in every subspace at once.
//
// A measure subspace M ⊆ 𝕄 is a bitmask over the schema's measure
// attributes (bit i ⇔ m_i ∈ M). All dominance tests operate on
// Tuple.Oriented values, where larger is always better.
package subspace

import (
	"math/bits"

	"repro/internal/relation"
)

// Mask selects a measure subspace: bit i set means measure m_i participates.
type Mask = uint32

// Full returns the full measure space 𝕄 over m attributes.
func Full(m int) Mask { return (1 << uint(m)) - 1 }

// Size returns |M|.
func Size(m Mask) int { return bits.OnesCount32(m) }

// Enumerate returns all non-empty subspaces with |M| ≤ maxSize (the paper's
// m̂ cap; maxSize < 0 means no cap), in increasing mask order. The full
// space is included iff maxSize allows it.
func Enumerate(m, maxSize int) []Mask {
	if maxSize < 0 || maxSize > m {
		maxSize = m
	}
	var out []Mask
	for s := Mask(1); s <= Full(m); s++ {
		if Size(s) <= maxSize {
			out = append(out, s)
		}
	}
	return out
}

// Dominates reports t ≻_M u: on every attribute of M, t is equal or
// better, and on at least one attribute strictly better (Def. 2).
func Dominates(t, u *relation.Tuple, m Mask) bool {
	strict := false
	for i := 0; m != 0; i++ {
		bit := Mask(1) << uint(i)
		if m&bit == 0 {
			continue
		}
		m &^= bit
		tv, uv := t.Oriented[i], u.Oriented[i]
		if tv < uv {
			return false
		}
		if tv > uv {
			strict = true
		}
	}
	return strict
}

// DominatesOrEqual reports t ≽_M u: equal or better on every attribute of M.
func DominatesOrEqual(t, u *relation.Tuple, m Mask) bool {
	for i := 0; m != 0; i++ {
		bit := Mask(1) << uint(i)
		if m&bit == 0 {
			continue
		}
		m &^= bit
		if t.Oriented[i] < u.Oriented[i] {
			return false
		}
	}
	return true
}

// Relation is the Proposition-4 three-way partition of the measure space
// with respect to an ordered tuple pair (t, u): Gt holds attributes where
// t > u, Lt where t < u, Eq where equal.
//
// t is dominated by u in subspace M iff M∩Lt ≠ ∅ and M∩Gt = ∅; t dominates
// u in M iff M∩Gt ≠ ∅ and M∩Lt = ∅. One Compare call therefore answers
// dominance for all 2^m subspaces — the key to the S* sharing algorithms.
type Relation struct {
	Gt, Lt, Eq Mask
}

// Compare computes the Relation of t versus u over m measure attributes.
func Compare(t, u *relation.Tuple, m int) Relation {
	var r Relation
	for i := 0; i < m; i++ {
		bit := Mask(1) << uint(i)
		switch {
		case t.Oriented[i] > u.Oriented[i]:
			r.Gt |= bit
		case t.Oriented[i] < u.Oriented[i]:
			r.Lt |= bit
		default:
			r.Eq |= bit
		}
	}
	return r
}

// DominatedIn reports whether t (the receiver's first argument of Compare)
// is dominated by u in subspace sub, per Proposition 4.
func (r Relation) DominatedIn(sub Mask) bool {
	return sub&r.Lt != 0 && sub&r.Gt == 0
}

// DominatesIn reports whether t dominates u in subspace sub.
func (r Relation) DominatesIn(sub Mask) bool {
	return sub&r.Gt != 0 && sub&r.Lt == 0
}

// DominatedSubspaces calls fn for every non-empty subspace of the m-attr
// measure space in which t is dominated by u, i.e. every M with M ⊆ Lt∪Eq
// and M∩Lt ≠ ∅. The enumeration is done directly over the Lt/Eq masks
// (never scanning subspaces where it cannot hold).
func (r Relation) DominatedSubspaces(fn func(Mask)) {
	// Subspaces within Lt ∪ Eq that touch Lt. Enumerate all submasks of
	// Lt∪Eq and skip those fully inside Eq.
	all := r.Lt | r.Eq
	if r.Lt == 0 {
		return
	}
	s := all
	for {
		if s&r.Lt != 0 {
			fn(s)
		}
		if s == 0 {
			return
		}
		s = (s - 1) & all
	}
}

// Names renders subspace m as the measure-attribute names of schema s,
// e.g. "{points, rebounds}".
func Names(m Mask, s *relation.Schema) []string {
	var out []string
	for i := 0; i < s.NumMeasures(); i++ {
		if m&(1<<uint(i)) != 0 {
			out = append(out, s.Measure(i).Name)
		}
	}
	return out
}
