package subspace

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func measureSchema(t *testing.T, m int) *relation.Schema {
	t.Helper()
	measures := make([]relation.MeasureAttr, m)
	names := []string{"m1", "m2", "m3", "m4", "m5", "m6", "m7"}
	for i := range measures {
		measures[i] = relation.MeasureAttr{Name: names[i], Direction: relation.LargerBetter}
	}
	s, err := relation.NewSchema("r", []relation.DimAttr{{Name: "d"}}, measures)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tup(t *testing.T, s *relation.Schema, vals ...float64) *relation.Tuple {
	t.Helper()
	tu, err := relation.NewTuple(s, 0, []int32{0}, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tu
}

func TestEnumerate(t *testing.T) {
	subs := Enumerate(3, -1)
	if len(subs) != 7 {
		t.Fatalf("Enumerate(3) = %v, want 7 non-empty subspaces", subs)
	}
	subs = Enumerate(4, 2)
	if len(subs) != 10 { // C(4,1)+C(4,2)
		t.Fatalf("Enumerate(4, m̂=2) = %d subspaces, want 10", len(subs))
	}
	for _, s := range subs {
		if Size(s) == 0 || Size(s) > 2 {
			t.Errorf("subspace %b violates cap", s)
		}
	}
	if got := Full(3); got != 0b111 {
		t.Errorf("Full(3) = %b", got)
	}
}

func TestDominates(t *testing.T) {
	s := measureSchema(t, 3)
	a := tup(t, s, 10, 5, 7)
	b := tup(t, s, 10, 4, 7)
	c := tup(t, s, 9, 9, 7)

	if !Dominates(a, b, 0b111) {
		t.Error("a should dominate b in full space (equal, better, equal)")
	}
	if Dominates(b, a, 0b111) {
		t.Error("b should not dominate a")
	}
	if Dominates(a, b, 0b101) {
		t.Error("a equals b on m1,m3: no strict attribute → no dominance")
	}
	if !DominatesOrEqual(a, b, 0b101) || !DominatesOrEqual(b, a, 0b101) {
		t.Error("equal-on-subspace must be ≽ both ways")
	}
	if Dominates(a, c, 0b111) || Dominates(c, a, 0b111) {
		t.Error("a and c are incomparable in full space")
	}
	if !Dominates(a, c, 0b001) {
		t.Error("a dominates c in {m1}")
	}
	if !Dominates(c, a, 0b010) {
		t.Error("c dominates a in {m2}")
	}
	if Dominates(a, a, 0b111) {
		t.Error("dominance must be irreflexive")
	}
}

func TestDominatesRespectsDirection(t *testing.T) {
	s, err := relation.NewSchema("r", []relation.DimAttr{{Name: "d"}},
		[]relation.MeasureAttr{
			{Name: "points", Direction: relation.LargerBetter},
			{Name: "fouls", Direction: relation.SmallerBetter},
		})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := relation.NewTuple(s, 0, []int32{0}, []float64{20, 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := relation.NewTuple(s, 1, []int32{0}, []float64{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !Dominates(hi, lo, 0b11) {
		t.Error("more points and fewer fouls must dominate")
	}
	if Dominates(lo, hi, 0b11) {
		t.Error("reverse dominance must fail")
	}
	if !Dominates(hi, lo, 0b10) {
		t.Error("fewer fouls must dominate in {fouls}")
	}
}

func TestCompareRelation(t *testing.T) {
	s := measureSchema(t, 4)
	a := tup(t, s, 5, 1, 3, 3)
	b := tup(t, s, 4, 2, 3, 9)
	r := Compare(a, b, 4)
	if r.Gt != 0b0001 || r.Lt != 0b1010 || r.Eq != 0b0100 {
		t.Fatalf("Compare = Gt %b Lt %b Eq %b", r.Gt, r.Lt, r.Eq)
	}
	// Proposition 4 cross-check against direct dominance for all subspaces.
	for sub := Mask(1); sub < 16; sub++ {
		if got, want := r.DominatedIn(sub), Dominates(b, a, sub); got != want {
			t.Errorf("subspace %b: DominatedIn=%v direct=%v", sub, got, want)
		}
		if got, want := r.DominatesIn(sub), Dominates(a, b, sub); got != want {
			t.Errorf("subspace %b: DominatesIn=%v direct=%v", sub, got, want)
		}
	}
}

func TestDominatedSubspaces(t *testing.T) {
	s := measureSchema(t, 3)
	a := tup(t, s, 1, 5, 5)
	b := tup(t, s, 2, 5, 4)
	r := Compare(a, b, 3)
	var got []Mask
	r.DominatedSubspaces(func(m Mask) { got = append(got, m) })
	// a < b on m1, = on m2, > on m3 → dominated in {m1}, {m1,m2}.
	want := map[Mask]bool{0b001: true, 0b011: true}
	if len(got) != len(want) {
		t.Fatalf("DominatedSubspaces = %b, want {001, 011}", got)
	}
	for _, m := range got {
		if !want[m] {
			t.Errorf("unexpected dominated subspace %b", m)
		}
	}

	// No Lt → nothing.
	r2 := Compare(b, a, 3)
	count := 0
	r2.DominatedSubspaces(func(m Mask) {
		if !Dominates(a, b, m) {
			t.Errorf("b not dominated by a in %b", m)
		}
		count++
	})
	if count != 2 { // symmetric case: {m3}, {m2,m3}
		t.Errorf("reverse DominatedSubspaces count = %d, want 2", count)
	}
}

// Property: DominatedSubspaces enumerates exactly {M : Dominates(u,t,M)}.
func TestDominatedSubspacesProperty(t *testing.T) {
	s := measureSchema(t, 4)
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 int8) bool {
		a := tupQuick(s, float64(a0%4), float64(a1%4), float64(a2%4), float64(a3%4))
		b := tupQuick(s, float64(b0%4), float64(b1%4), float64(b2%4), float64(b3%4))
		r := Compare(a, b, 4)
		got := map[Mask]bool{}
		r.DominatedSubspaces(func(m Mask) {
			if m == 0 {
				return
			}
			got[m] = true
		})
		for sub := Mask(1); sub < 16; sub++ {
			if got[sub] != Dominates(b, a, sub) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: dominance is a strict partial order (irreflexive, asymmetric,
// transitive) on random triples.
func TestDominanceStrictPartialOrder(t *testing.T) {
	s := measureSchema(t, 3)
	f := func(v [9]int8, subRaw uint8) bool {
		sub := Mask(subRaw%7) + 1
		a := tupQuick(s, float64(v[0]%3), float64(v[1]%3), float64(v[2]%3))
		b := tupQuick(s, float64(v[3]%3), float64(v[4]%3), float64(v[5]%3))
		c := tupQuick(s, float64(v[6]%3), float64(v[7]%3), float64(v[8]%3))
		if Dominates(a, a, sub) {
			return false
		}
		if Dominates(a, b, sub) && Dominates(b, a, sub) {
			return false
		}
		if Dominates(a, b, sub) && Dominates(b, c, sub) && !Dominates(a, c, sub) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func tupQuick(s *relation.Schema, vals ...float64) *relation.Tuple {
	tu, err := relation.NewTuple(s, 0, []int32{0}, vals)
	if err != nil {
		panic(err)
	}
	return tu
}

func TestNames(t *testing.T) {
	s := measureSchema(t, 3)
	got := Names(0b101, s)
	if len(got) != 2 || got[0] != "m1" || got[1] != "m3" {
		t.Errorf("Names(101) = %v", got)
	}
}
